"""Operator policies and their data-plane checks.

Each policy examines a reconstructed snapshot (and, where relevant,
the physical topology for link status) and reports
:class:`Violation` records.  Policies are pure functions of their
inputs — no simulator access — so they work identically on naive
snapshots, consistent snapshots, and hypothetical post-update states
(the pipeline's verify-before-install path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addr import Prefix
from repro.net.topology import Topology
from repro.snapshot.base import DataPlaneSnapshot


@dataclass(frozen=True)
class Violation:
    """One detected policy violation."""

    policy: str
    detail: str
    prefix: Optional[Prefix] = None
    router: Optional[str] = None
    path: Tuple[str, ...] = ()

    def key(self) -> Tuple:
        """Identity for before/after diffing in the pipeline.

        Deliberately excludes the path: a flow that was already
        violating and merely re-routes (still violating) is the same
        violation, not a new one — only (policy, prefix, source)
        identifies it.
        """
        return (self.policy, str(self.prefix), self.router)

    def __str__(self) -> str:
        where = f" at {self.router}" if self.router else ""
        target = f" for {self.prefix}" if self.prefix else ""
        return f"[{self.policy}]{target}{where}: {self.detail}"


class Policy:
    """Base class; subclasses implement :meth:`check_addresses`.

    :meth:`check` probes every address in :meth:`probe_addresses`;
    :meth:`check_addresses` restricts the probe set, which is how the
    incremental verifier re-checks only the addresses a FIB delta can
    affect.  The contract the differential oracle pins down:
    ``check(s, t) == check_addresses(s, t, probe_addresses(s))``, and
    checking addresses one at a time concatenates to the same result.
    """

    name = "policy"

    def check(
        self, snapshot: DataPlaneSnapshot, topology: Topology
    ) -> List[Violation]:
        return self.check_addresses(
            snapshot, topology, self.probe_addresses(snapshot)
        )

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        raise NotImplementedError

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        """The addresses this policy probes on ``snapshot``."""
        return self.addresses_of_interest(snapshot)

    def addresses_of_interest(self, snapshot: DataPlaneSnapshot) -> List[int]:
        """Default probe set: first address of every snapshot prefix."""
        return sorted({p.first_address() for p in snapshot.all_prefixes()})

    def _internal_sources(
        self, snapshot: DataPlaneSnapshot, topology: Topology
    ) -> List[str]:
        internal = set(topology.internal_routers())
        return sorted(internal & set(snapshot.routers()))


class LoopFreedomPolicy(Policy):
    """Packets must never revisit a router (always-property)."""

    name = "loop-freedom"

    def __init__(self, prefixes: Optional[Sequence[Prefix]] = None):
        self.prefixes = list(prefixes) if prefixes else None

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        if self.prefixes is not None:
            return [p.first_address() for p in self.prefixes]
        return self.addresses_of_interest(snapshot)

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        violations: List[Violation] = []
        for address in addresses:
            prefix = Prefix(address, 32)
            for source in self._internal_sources(snapshot, topology):
                path, outcome = snapshot.trace(source, address)
                if outcome == "loop":
                    violations.append(
                        Violation(
                            policy=self.name,
                            detail=f"forwarding loop {'->'.join(path)}",
                            prefix=prefix,
                            router=source,
                            path=tuple(path),
                        )
                    )
        return violations


class BlackholeFreedomPolicy(Policy):
    """A router must not forward to a next hop that drops the packet.

    Only *forwarding inconsistencies* count: a path of length > 1
    ending in ``blackhole`` means some router handed the packet to a
    neighbor with no route.  A source with no FIB entry at all is not
    a violation (it may legitimately have no route).
    """

    name = "blackhole-freedom"

    def __init__(self, prefixes: Optional[Sequence[Prefix]] = None):
        self.prefixes = list(prefixes) if prefixes else None

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        if self.prefixes is not None:
            return [p.first_address() for p in self.prefixes]
        return self.addresses_of_interest(snapshot)

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        violations: List[Violation] = []
        for address in addresses:
            prefix = Prefix(address, 32)
            for source in self._internal_sources(snapshot, topology):
                path, outcome = snapshot.trace(source, address)
                if outcome == "blackhole" and len(path) > 1:
                    violations.append(
                        Violation(
                            policy=self.name,
                            detail=f"traffic black-holed along {'->'.join(path)}",
                            prefix=prefix,
                            router=source,
                            path=tuple(path),
                        )
                    )
        return violations


class ReachabilityPolicy(Policy):
    """Given sources must be able to deliver traffic for ``prefix``."""

    name = "reachability"

    def __init__(self, prefix: Prefix, sources: Sequence[str]):
        self.prefix = prefix
        self.sources = list(sources)

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        return [self.prefix.first_address()]

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        violations: List[Violation] = []
        address = self.prefix.first_address()
        if address not in addresses:
            return violations
        for source in self.sources:
            path, outcome = snapshot.trace(source, address)
            if outcome != "delivered":
                violations.append(
                    Violation(
                        policy=self.name,
                        detail=(
                            f"{source} cannot reach {self.prefix} "
                            f"({outcome} along {'->'.join(path)})"
                        ),
                        prefix=self.prefix,
                        router=source,
                        path=tuple(path),
                    )
                )
        return violations


class WaypointPolicy(Policy):
    """Delivered traffic for ``prefix`` must traverse ``waypoint``
    (e.g. "traffic should never bypass a firewall", §5)."""

    name = "waypoint"

    def __init__(
        self,
        prefix: Prefix,
        waypoint: str,
        sources: Optional[Sequence[str]] = None,
    ):
        self.prefix = prefix
        self.waypoint = waypoint
        self.sources = list(sources) if sources else None

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        return [self.prefix.first_address()]

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        violations: List[Violation] = []
        address = self.prefix.first_address()
        if address not in addresses:
            return violations
        sources = self.sources or self._internal_sources(snapshot, topology)
        for source in sources:
            if source == self.waypoint:
                continue
            path, outcome = snapshot.trace(source, address)
            if outcome == "delivered" and self.waypoint not in path:
                violations.append(
                    Violation(
                        policy=self.name,
                        detail=(
                            f"traffic from {source} bypasses waypoint "
                            f"{self.waypoint} ({'->'.join(path)})"
                        ),
                        prefix=self.prefix,
                        router=source,
                        path=tuple(path),
                    )
                )
        return violations


class PreferredExitPolicy(Policy):
    """The §2 policy: use the preferred exit while its uplink is up.

        "R2 is the preferred exit point when its uplink is up;
        otherwise, R1 should be used."

    ``uplink_of`` maps each exit router to its external uplink peer;
    the uplink's link status is read from the live topology (a
    hardware fact, not data-plane state).
    """

    name = "preferred-exit"

    def __init__(
        self,
        prefix: Prefix,
        preferred_exit: str,
        fallback_exit: str,
        uplink_of: Dict[str, str],
        sources: Optional[Sequence[str]] = None,
    ):
        self.prefix = prefix
        self.preferred_exit = preferred_exit
        self.fallback_exit = fallback_exit
        self.uplink_of = dict(uplink_of)
        self.sources = list(sources) if sources else None

    def _uplink_up(self, topology: Topology, exit_router: str) -> bool:
        peer = self.uplink_of.get(exit_router)
        if peer is None:
            return False
        link = topology.link_between(exit_router, peer)
        return link is not None and link.up

    def required_exit(self, topology: Topology) -> Optional[str]:
        if self._uplink_up(topology, self.preferred_exit):
            return self.preferred_exit
        if self._uplink_up(topology, self.fallback_exit):
            return self.fallback_exit
        return None

    def probe_addresses(self, snapshot: DataPlaneSnapshot) -> List[int]:
        return [self.prefix.first_address()]

    def check_addresses(
        self,
        snapshot: DataPlaneSnapshot,
        topology: Topology,
        addresses: Sequence[int],
    ) -> List[Violation]:
        required = self.required_exit(topology)
        if required is None:
            return []  # no uplink available; nothing to enforce
        required_uplink = self.uplink_of[required]
        violations: List[Violation] = []
        address = self.prefix.first_address()
        if address not in addresses:
            return violations
        sources = self.sources or self._internal_sources(snapshot, topology)
        for source in sources:
            path, outcome = snapshot.trace(source, address)
            if outcome != "delivered":
                continue  # not this policy's concern (blackhole policy's)
            if required_uplink not in path:
                violations.append(
                    Violation(
                        policy=self.name,
                        detail=(
                            f"traffic from {source} exits via "
                            f"{'->'.join(path)} instead of {required} "
                            f"(uplink {required_uplink})"
                        ),
                        prefix=self.prefix,
                        router=source,
                        path=tuple(path),
                    )
                )
        return violations
