"""Delta-net-style atoms: the prefix-range partition for incremental verify.

Delta-net (PAPERS.md) observes that the set of prefixes installed in a
network induces a partition of the address space into *atoms* —
maximal half-open address ranges that every installed prefix either
fully contains or is disjoint from.  Any FIB delta for a prefix can
only change forwarding behaviour for addresses inside that prefix's
range, i.e. inside the atoms the prefix covers; every other atom's
behaviour is untouched.  That locality is what lets the incremental
verifier (:mod:`repro.verify.incremental`) re-check only the affected
slice of the data plane per update.

The partition here is the boundary-set formulation: a sorted list of
boundary addresses, initially ``[0, 2^32]``, refined by inserting the
first address and the past-the-end address of each observed prefix.
Atoms are the half-open intervals ``[bounds[i], bounds[i+1])``.

Refinement is *minimal* (a prefix adds at most its two boundaries,
and only when absent) and *monotone*: withdrawing a prefix does not
merge atoms back.  Monotonicity buys order-independence — the table
after any permutation of the same delta set is byte-identical (the
boundary set is a set) — at the cost of a partition that can be finer
than the live prefix set strictly requires.  The atom count is
bounded by ``2 * |distinct prefixes ever seen| + 1``, which for
control-plane workloads (a fixed advertised prefix universe under
churn) is small and stable.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Tuple

from repro.net.addr import IPV4_MAX, Prefix

#: Past-the-end sentinel: one past the highest IPv4 address.
_END = IPV4_MAX + 1


class AtomTable:
    """The sorted boundary set inducing the atom partition."""

    __slots__ = ("_bounds",)

    def __init__(self) -> None:
        self._bounds: List[int] = [0, _END]

    def __len__(self) -> int:
        return len(self._bounds) - 1

    def atom_count(self) -> int:
        """Number of atoms (always ``len(boundaries) - 1``)."""
        return len(self._bounds) - 1

    def boundaries(self) -> Tuple[int, ...]:
        return tuple(self._bounds)

    def ensure(self, prefix: Prefix) -> int:
        """Refine the partition with ``prefix``'s two boundaries.

        Returns how many boundaries were actually new (0, 1 or 2) —
        the "minimal refinement" contract the property tests pin down.
        """
        added = 0
        for bound in (prefix.first_address(), prefix.last_address() + 1):
            position = bisect_left(self._bounds, bound)
            if self._bounds[position] != bound:
                self._bounds.insert(position, bound)
                added += 1
        return added

    def atoms(self) -> List[Tuple[int, int]]:
        """All atoms as half-open ``(start, end)`` address ranges."""
        return [
            (self._bounds[i], self._bounds[i + 1])
            for i in range(len(self._bounds) - 1)
        ]

    def atom_of(self, address: int) -> Tuple[int, int]:
        """The atom containing ``address``."""
        if not 0 <= address < _END:
            raise ValueError(f"address out of IPv4 range: {address}")
        position = bisect_right(self._bounds, address) - 1
        return (self._bounds[position], self._bounds[position + 1])

    def atoms_within(self, prefix: Prefix) -> List[Tuple[int, int]]:
        """Atoms overlapping ``prefix``'s address range.

        After :meth:`ensure` of the same prefix, every returned atom
        lies fully inside the prefix (its boundaries are in the set),
        so this is exactly the set of atoms a delta for the prefix can
        touch.
        """
        first = prefix.first_address()
        end = prefix.last_address() + 1
        lo = bisect_right(self._bounds, first) - 1
        hi = bisect_left(self._bounds, end)
        if self._bounds[hi] != end:
            hi += 1
        return [
            (self._bounds[i], self._bounds[i + 1]) for i in range(lo, hi)
        ]

    def to_bytes(self) -> bytes:
        """Canonical serialisation for cross-process determinism checks."""
        return ",".join(str(bound) for bound in self._bounds).encode("ascii")
