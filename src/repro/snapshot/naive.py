"""The naive snapshotter: what existing data-plane verifiers do.

    "They rely on a centralized snapshot of the data plane, which is
    difficult to construct, because routers may provide a snapshot of
    their forwarding information base (FIB) at slightly different
    times."  (§2)

The naive snapshotter takes whatever FIB events have *reached the
verifier* by the requested instant and replays them into tables — no
consistency reasoning at all.  During convergence this happily mixes
one router's new FIB with another's stale FIB, which is exactly how
the phantom R1↔R2 loop of Fig. 1c arises.
"""

from __future__ import annotations


from repro.snapshot.base import DataPlaneSnapshot, VerifierView


class NaiveSnapshotter:
    """Latest-delivered-state snapshots, no consistency check."""

    def __init__(self, view: VerifierView):
        self.view = view

    def snapshot(self, at: float) -> DataPlaneSnapshot:
        """Reconstruct FIBs from everything delivered by time ``at``."""
        return DataPlaneSnapshot.from_fib_events(
            self.view.visible_events(at), taken_at=at
        )
