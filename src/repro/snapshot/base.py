"""Snapshot data structures shared by the naive and consistent paths.

A :class:`DataPlaneSnapshot` is the verifier's *reconstruction* of
the network's FIBs from captured FIB_UPDATE events — deliberately a
different type from the simulator's live FIBs, because the whole
point of Fig. 1c is that the reconstruction can disagree with
reality.  :class:`VerifierView` models the verifier's partial
knowledge: each router's log stream reaches the verifier with its own
delivery lag, so at any wall-clock instant the verifier has seen a
different amount of history from each router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.capture.collector import Collector
from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix, PrefixTrie


@dataclass(frozen=True)
class SnapshotEntry:
    """One reconstructed FIB entry (from a FIB_UPDATE announce event)."""

    router: str
    prefix: Prefix
    next_hop_router: Optional[str]
    out_interface: Optional[str]
    protocol: Optional[str]
    discard: bool
    source_event_id: int
    timestamp: float

    @classmethod
    def from_event(cls, event: IOEvent) -> "SnapshotEntry":
        if event.kind is not IOKind.FIB_UPDATE:
            raise ValueError(f"not a FIB update: {event}")
        if event.prefix is None:
            raise ValueError(f"FIB update without prefix: {event}")
        return cls(
            router=event.router,
            prefix=event.prefix,
            next_hop_router=event.attr("next_hop_router"),
            out_interface=event.attr("out_interface"),
            protocol=event.protocol,
            discard=bool(event.attr("discard", False)),
            source_event_id=event.event_id,
            timestamp=event.timestamp,
        )


class DataPlaneSnapshot:
    """Per-router FIBs reconstructed from captured events."""

    def __init__(self) -> None:
        self._tables: Dict[str, PrefixTrie] = {}
        self._taken_at: Optional[float] = None

    @property
    def taken_at(self) -> Optional[float]:
        return self._taken_at

    def set_taken_at(self, when: float) -> None:
        self._taken_at = when

    def install(self, entry: SnapshotEntry) -> None:
        table = self._tables.get(entry.router)
        if table is None:
            table = PrefixTrie()
            self._tables[entry.router] = table
        # PrefixTrie.insert is keyed on the prefix, not a positional
        # list insert — PERF001's pattern match is a false positive.
        table.insert(entry.prefix, entry)  # repro: lint-ignore[PERF001]

    def remove(self, router: str, prefix: Prefix) -> None:
        table = self._tables.get(router)
        if table is not None:
            table.delete(prefix)

    def routers(self) -> List[str]:
        return sorted(self._tables)

    def has_router(self, router: str) -> bool:
        """Whether ``router`` has a (possibly empty) reconstructed table.

        Load-bearing for :meth:`trace`'s external-router heuristic: a
        router with *no* table counts as delivered, one with a table
        but no matching entry as a black hole — so the first entry a
        router ever installs changes trace outcomes for every address,
        which the incremental verifier must treat as a global event.
        """
        return router in self._tables

    def entry(self, router: str, prefix: Prefix) -> Optional[SnapshotEntry]:
        table = self._tables.get(router)
        if table is None:
            return None
        return table.get(prefix)

    def lookup(self, router: str, address: int) -> Optional[SnapshotEntry]:
        """Longest-prefix-match in the reconstructed FIB of ``router``."""
        table = self._tables.get(router)
        if table is None:
            return None
        match = table.longest_match(address)
        if match is None:
            return None
        return match[1]

    def entries_of(self, router: str) -> List[SnapshotEntry]:
        table = self._tables.get(router)
        if table is None:
            return []
        return [entry for _, entry in table.items()]

    def all_prefixes(self) -> Set[Prefix]:
        prefixes: Set[Prefix] = set()
        for table in self._tables.values():
            prefixes.update(prefix for prefix, _ in table.items())
        return prefixes

    def trace(
        self, source: str, address: int, max_hops: int = 64
    ) -> Tuple[List[str], str]:
        """Walk the *reconstructed* FIBs (the verifier's world view).

        Same outcome vocabulary as the simulator's oracle
        ``trace_path``: delivered / blackhole / discard / loop —
        except here a hop into a router with no table at all counts
        as ``delivered`` (external routers are not captured).
        """
        path = [source]
        current = source
        seen = {source}
        for _ in range(max_hops):
            if current not in self._tables and current != source:
                return path, "delivered"
            entry = self.lookup(current, address)
            if entry is None:
                return path, "blackhole"
            if entry.discard:
                return path, "discard"
            if entry.next_hop_router is None:
                return path, "delivered"
            current = entry.next_hop_router
            path.append(current)
            if current in seen:
                return path, "loop"
            seen.add(current)
        return path, "loop"

    @classmethod
    def from_fib_events(
        cls, events: Iterable[IOEvent], taken_at: Optional[float] = None
    ) -> "DataPlaneSnapshot":
        """Replay FIB_UPDATE events (in timestamp order) into tables."""
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        snapshot = cls()
        ordered = sorted(
            (e for e in events if e.kind is IOKind.FIB_UPDATE),
            key=lambda e: (e.timestamp, e.event_id),
        )
        for event in ordered:
            if event.prefix is None:
                continue
            if event.action is RouteAction.WITHDRAW:
                snapshot.remove(event.router, event.prefix)
            else:
                snapshot.install(SnapshotEntry.from_event(event))
        if taken_at is not None:
            snapshot.set_taken_at(taken_at)
        if registry.enabled:
            registry.counter("snapshot.reconstructions_total").inc()
            registry.histogram("snapshot.reconstruct_seconds").observe(
                watch.elapsed()
            )
            registry.histogram("snapshot.reconstruct_events").observe(
                len(ordered)
            )
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.record(
                obs.TraceKind.SNAPSHOT_BUILD,
                at=(
                    taken_at
                    if taken_at is not None
                    else (ordered[-1].timestamp if ordered else 0.0)
                ),
                events=len(ordered),
                routers=len(snapshot.routers()),
            )
        return snapshot

    @classmethod
    def from_live_network(cls, network) -> "DataPlaneSnapshot":
        """Oracle snapshot straight from the simulator's FIBs.

        Only possible in simulation; used by tests to compare the
        verifier's reconstruction against reality.
        """
        snapshot = cls()
        for router, table in network.forwarding_state().items():
            if network.runtime(router).router.external:
                continue
            for prefix, entry in table.items():
                snapshot.install(
                    SnapshotEntry(
                        router=router,
                        prefix=prefix,
                        next_hop_router=entry.next_hop_router,
                        out_interface=entry.out_interface,
                        protocol=entry.protocol,
                        discard=entry.discard,
                        source_event_id=0,
                        timestamp=network.sim.now,
                    )
                )
        snapshot.set_taken_at(network.sim.now)
        return snapshot


class VerifierView:
    """What the verifier has received from each router by a given time.

    ``lags`` maps router name to log-delivery lag in seconds (default
    lag applies to unlisted routers).  An event logged by router R at
    time t reaches the verifier at t + lag(R) — the mechanism behind
    Fig. 1c's "the FIB update at R2 is just missed by the verifier".
    """

    def __init__(
        self,
        collector: Collector,
        lags: Optional[Dict[str, float]] = None,
        default_lag: float = 0.0,
    ):
        self.collector = collector
        self.lags = dict(lags or {})
        self.default_lag = default_lag

    def lag_of(self, router: str) -> float:
        return self.lags.get(router, self.default_lag)

    def arrival_time(self, event: IOEvent) -> float:
        return event.timestamp + self.lag_of(event.router)

    def visible_events(self, at: float) -> List[IOEvent]:
        """Events the verifier has received by wall-clock time ``at``."""
        return [
            event
            for event in self.collector
            if self.arrival_time(event) <= at
        ]

    def visible_ids(self, at: float) -> Set[int]:
        return {event.event_id for event in self.visible_events(at)}
