"""The HBG-based consistent snapshotter (§5).

    "To obtain a consistent snapshot — i.e., one that reflects the
    FIB entries a packet would encounter as it traverses the network
    at a specific instance in time — we simply need to ensure that if
    a FIB snapshot from one router (R) was taken after applying a
    route update (U), then the FIB snapshot from every other router
    that had previously received U must also have been taken after
    applying U."

The check walks exactly the recursion the paper describes: starting
from each FIB update in the candidate cut, follow its advertisement
parents backwards.  A receive without its matching send in the HBG
means some router's I/Os have not arrived yet ("all router I/Os have
not been received and integrated into the HBG, so we may be missing
some FIB updates") — the snapshot is declared inconsistent and the
verifier is told which routers to wait for.  The walk terminates at
FIB updates that do not depend on an advertisement, or when "the
router from which the update was received is external to the
network".

This is a Chandy–Lamport-style consistent-cut condition specialised
to the HBG: the visible event set must be causally closed along
advertisement edges.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import HappensBeforeGraph
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.snapshot.base import DataPlaneSnapshot, VerifierView


#: Distinguishes "memoized as absent" from "not yet memoized".
_UNSET: object = object()

#: Sorts after every real event id in the FIB-table bisect probes.
_AFTER_ANY_ID = float("inf")


@dataclass
class ConsistencyReport:
    """Outcome of the §5 consistency check."""

    consistent: bool
    #: Internal routers whose logs the verifier must wait for.
    missing_routers: Set[str] = field(default_factory=set)
    #: Human-readable explanations, one per problem found.
    reasons: List[str] = field(default_factory=list)
    #: Number of walk steps performed (benchmark instrumentation).
    steps: int = 0

    def merge(self, other: "ConsistencyReport") -> None:
        self.consistent = self.consistent and other.consistent
        self.missing_routers.update(other.missing_routers)
        self.reasons.extend(other.reasons)
        self.steps += other.steps


class ConsistentSnapshotter:
    """Snapshots that pass the §5 HBG closure check."""

    def __init__(
        self,
        view: VerifierView,
        internal_routers: Sequence[str],
        engine: Optional[InferenceEngine] = None,
        inflight_bound: float = 0.1,
        max_unmatched_age: Optional[float] = 30.0,
    ):
        self.view = view
        self.internal_routers = set(internal_routers)
        self.engine = engine or InferenceEngine()
        #: Propagation bound used only to phrase the deferral reason
        #: ("in flight" vs "log lagging"); both defer regardless.
        self.inflight_bound = inflight_bound
        #: After this long, an unmatched send is presumed lost (e.g. a
        #: partition swallowed it) and stops deferring snapshots.
        self.max_unmatched_age = max_unmatched_age
        # Per-check() memo state — the §5 recursion re-enters the same
        # advertisement ancestry from many FIB updates of one cut, so
        # closed subwalks are cached for the duration of one check.
        # Reset at the top of check(); never reused across graphs.
        self._ancestor_memo: Dict[Tuple[int, Optional[Prefix]], List[IOEvent]] = {}
        self._send_memo: Dict[int, Optional[IOEvent]] = {}
        self._fib_table: Optional[
            Dict[Tuple[str, Prefix], List[Tuple[float, int, IOEvent]]]
        ] = None
        self._memo_hits = 0
        self._memo_misses = 0
        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("snapshot.closure_cache", self)

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of the closure/ancestor caches (ledger)."""
        from repro.obs import resources

        return resources.combined_sizeof(
            (self._ancestor_memo, self._send_memo, self._fib_table),
            sample=None if audit else obs.get_ledger().sample,
        )

    # -- public API -------------------------------------------------------

    def snapshot(
        self, at: float, prefix: Optional[Prefix] = None
    ) -> Tuple[DataPlaneSnapshot, ConsistencyReport]:
        """Build the snapshot visible at ``at`` and check consistency.

        With ``prefix`` given, only that prefix's update chains are
        checked (the per-prefix mode the verifier uses when reacting
        to a specific FIB update); otherwise every prefix seen in any
        FIB event is checked.
        """
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        visible = self.view.visible_events(at)
        graph = self.engine.build_graph(visible)
        snapshot = DataPlaneSnapshot.from_fib_events(visible, taken_at=at)
        report = self.check(graph, visible, prefix=prefix, at=at)
        if registry.enabled:
            registry.counter("snapshot.consistency_checks_total").inc()
            if not report.consistent:
                registry.counter("snapshot.inconsistent_total").inc()
            registry.histogram("snapshot.consistency_check_seconds").observe(
                watch.elapsed()
            )
            registry.histogram("snapshot.walk_steps").observe(report.steps)
        return snapshot, report

    def wait_until_consistent(
        self,
        start: float,
        deadline: float,
        step: float = 0.05,
        prefix: Optional[Prefix] = None,
    ) -> Tuple[Optional[DataPlaneSnapshot], ConsistencyReport, float]:
        """§7's remedy: "the verifier can wait until it receives the
        up-to-date HBG from R1 before verifying the data plane."

        Polls forward in time until the snapshot is consistent or the
        deadline passes.  Returns (snapshot-or-None, last report,
        time of the returned snapshot).
        """
        when = start
        with obs.span("snapshot.wait_until_consistent"):
            snapshot, report = self.snapshot(when, prefix=prefix)
            while not report.consistent and when < deadline:
                when = min(deadline, when + step)
                snapshot, report = self.snapshot(when, prefix=prefix)
        registry = obs.get_registry()
        if registry.enabled:
            # Simulated seconds the verifier deferred past ``start``
            # waiting for straggler logs (§7's remedy).
            registry.histogram("snapshot.wait_sim_seconds").observe(
                when - start
            )
            if not report.consistent:
                registry.counter("snapshot.wait_deadline_exceeded_total").inc()
        if report.consistent:
            return snapshot, report, when
        return None, report, when

    # -- the §5 walk ------------------------------------------------------------

    def check(
        self,
        graph: HappensBeforeGraph,
        visible: Sequence[IOEvent],
        prefix: Optional[Prefix] = None,
        at: Optional[float] = None,
    ) -> ConsistencyReport:
        self._ancestor_memo = {}
        self._send_memo = {}
        self._fib_table = None
        self._memo_hits = 0
        self._memo_misses = 0
        report = ConsistencyReport(consistent=True)
        if at is not None:
            self._check_send_closure(graph, visible, prefix, at, report)
        fib_events = [
            e
            for e in visible
            if e.kind is IOKind.FIB_UPDATE
            and e.prefix is not None
            and (prefix is None or e.prefix == prefix)
            and e.protocol in ("ebgp", "ibgp", "bgp")
        ]
        # Only the *latest* FIB event per (router, prefix) is part of
        # the cut; superseded ones need no closure.
        latest: Dict[Tuple[str, Prefix], IOEvent] = {}
        for event in fib_events:
            key = (event.router, event.prefix)
            current = latest.get(key)
            if current is None or (event.timestamp, event.event_id) > (
                current.timestamp,
                current.event_id,
            ):
                latest[key] = event
        visited: Set[int] = set()
        for event in latest.values():
            sub = self._walk_fib_update(graph, event, visited)
            report.merge(sub)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("snapshot.closure_cache_hits").inc(
                self._memo_hits
            )
            registry.counter("snapshot.closure_cache_misses").inc(
                self._memo_misses
            )
        return report

    def _check_send_closure(
        self,
        graph: HappensBeforeGraph,
        visible: Sequence[IOEvent],
        prefix: Optional[Prefix],
        at: float,
        report: ConsistencyReport,
    ) -> None:
        """The dual of the receive walk: sends need matching receives.

        A visible [R' send U to N] with no visible [N receive U] means
        either U is still in flight or N's log stream is lagging.  The
        verifier cannot distinguish the two without heartbeats, and
        only the former matches reality — so *both* defer the
        snapshot: the cut may show N's FIB arbitrarily stale, which is
        how phantom black holes at transit routers arise.  The small
        cost is deferring a few propagation-delays' worth of probes
        even under zero log lag.

        Known limitation: an advertisement permanently lost in the
        network (e.g. sent just as a partition formed) defers this
        prefix's snapshots until ``max_unmatched_age`` passes, after
        which the send is presumed dead and ignored.
        """
        slack = self.inflight_bound + self.engine.config.clock_skew_tolerance
        for send in visible:
            if send.kind is not IOKind.ROUTE_SEND:
                continue
            if send.protocol != "bgp":
                continue
            if send.peer not in self.internal_routers:
                continue
            if prefix is not None and send.prefix != prefix:
                continue
            if (
                self.max_unmatched_age is not None
                and at > send.timestamp + self.max_unmatched_age
            ):
                continue  # presumed lost in a partition; give up waiting
            report.steps += 1
            received = any(
                child.kind is IOKind.ROUTE_RECEIVE
                for child, _evidence in graph.children(send.event_id)
            )
            if not received:
                report.consistent = False
                report.missing_routers.add(send.peer)
                in_flight = at < send.timestamp + slack
                why = (
                    "may still be in flight"
                    if in_flight
                    else "has not reached the verifier"
                )
                report.reasons.append(
                    f"{send.router} sent {send.action.value if send.action else '?'} "
                    f"for {send.prefix} to {send.peer} at {send.timestamp:.3f}s "
                    f"but {send.peer}'s receive {why}"
                )

    def _walk_fib_update(
        self,
        graph: HappensBeforeGraph,
        fib_event: IOEvent,
        visited: Set[int],
    ) -> ConsistencyReport:
        """One recursion step of the §5 algorithm.

        ``visited`` doubles as the subwalk memo: chains from several
        cut fronts funnel into the same upstream FIB updates, and a
        subwalk already closed under this snapshot need not be redone
        (its verdict is already merged into the report).
        """
        report = ConsistencyReport(consistent=True)
        if fib_event.event_id in visited:
            self._memo_hits += 1
            return report
        self._memo_misses += 1
        visited.add(fib_event.event_id)
        report.steps += 1
        receives = self._advertisement_ancestors(graph, fib_event)
        for recv in receives:
            report.steps += 1
            sender = recv.peer
            if sender is None or sender not in self.internal_routers:
                # "...the router from which the update was received is
                # external to the network" — the walk terminates here.
                continue
            send = self._matching_send(graph, recv)
            if send is None:
                report.consistent = False
                report.missing_routers.add(sender)
                report.reasons.append(
                    f"{recv.router}'s HBG contains a route for "
                    f"{recv.prefix} via {sender} that has not been "
                    f"announced in the HBG received from {sender}"
                )
                continue
            # BGP property: the sender installed its FIB before
            # sending.  Its FIB update must therefore be visible.
            sender_fib = self._latest_fib_before(
                graph, sender, recv.prefix, send.timestamp
            )
            if sender_fib is None:
                report.consistent = False
                report.missing_routers.add(sender)
                report.reasons.append(
                    f"{sender} announced {recv.prefix} but its own FIB "
                    f"update has not reached the verifier"
                )
                continue
            sub = self._walk_fib_update(graph, sender_fib, visited)
            report.merge(sub)
        return report

    def _advertisement_ancestors(
        self, graph: HappensBeforeGraph, fib_event: IOEvent
    ) -> List[IOEvent]:
        """ROUTE_RECEIVE ancestors of ``fib_event`` for the same prefix,
        reached without crossing another FIB update (i.e. the receive
        that this particular FIB change depends on).

        The walk is pure in (event, prefix) for a fixed graph, so the
        closed subwalk is memoized for the rest of this check() — cut
        fronts for the same prefix on different routers funnel into the
        same advertisement ancestry over and over.
        """
        memo_key = (fib_event.event_id, fib_event.prefix)
        cached = self._ancestor_memo.get(memo_key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        result: List[IOEvent] = []
        stack = [fib_event.event_id]
        seen = {fib_event.event_id}
        while stack:
            node = stack.pop()
            for parent, _evidence in graph.parents(node):
                if parent.event_id in seen:
                    continue
                seen.add(parent.event_id)
                if parent.kind is IOKind.ROUTE_RECEIVE:
                    if parent.prefix == fib_event.prefix:
                        result.append(parent)
                    continue
                if parent.kind in (IOKind.RIB_UPDATE,):
                    stack.append(parent.event_id)
                # CONFIG_CHANGE / HARDWARE_STATUS parents terminate the
                # walk: the FIB update did not depend on an
                # advertisement along this path.
        self._ancestor_memo[memo_key] = result
        return result

    def _matching_send(
        self, graph: HappensBeforeGraph, recv: IOEvent
    ) -> Optional[IOEvent]:
        cached = self._send_memo.get(recv.event_id, _UNSET)
        if cached is not _UNSET:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        found: Optional[IOEvent] = None
        for parent, _evidence in graph.parents(recv.event_id):
            if (
                parent.kind is IOKind.ROUTE_SEND
                and parent.router == recv.peer
                and parent.prefix == recv.prefix
            ):
                found = parent
                break
        self._send_memo[recv.event_id] = found
        return found

    def _latest_fib_before(
        self,
        graph: HappensBeforeGraph,
        router: str,
        prefix: Optional[Prefix],
        when: float,
    ) -> Optional[IOEvent]:
        """Newest FIB update on ``router`` for ``prefix`` at ``when``.

        Answered from a per-(router, prefix) sorted table built once
        per check() — the naive per-query scan of every one of the
        router's events dominated large-network snapshot checks.
        """
        if self._fib_table is None:
            table: Dict[
                Tuple[str, Prefix], List[Tuple[float, int, IOEvent]]
            ] = {}
            for event in graph.events():
                if event.kind is not IOKind.FIB_UPDATE:
                    continue
                if event.prefix is None:
                    continue
                table.setdefault((event.router, event.prefix), []).append(
                    (event.timestamp, event.event_id, event)
                )
            # graph.events() yields in event-id order; per-bucket sort
            # restores the (timestamp, id) order the bisect needs.
            for bucket in table.values():
                bucket.sort(key=lambda item: (item[0], item[1]))
            self._fib_table = table
        if prefix is None:
            return None
        bucket = self._fib_table.get((router, prefix))
        if not bucket:
            return None
        slack = self.engine.config.clock_skew_tolerance
        cut = bisect_right(bucket, (when + slack, _AFTER_ANY_ID))
        if cut == 0:
            return None
        return bucket[cut - 1][2]
