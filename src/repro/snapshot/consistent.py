"""The HBG-based consistent snapshotter (§5).

    "To obtain a consistent snapshot — i.e., one that reflects the
    FIB entries a packet would encounter as it traverses the network
    at a specific instance in time — we simply need to ensure that if
    a FIB snapshot from one router (R) was taken after applying a
    route update (U), then the FIB snapshot from every other router
    that had previously received U must also have been taken after
    applying U."

The check walks exactly the recursion the paper describes: starting
from each FIB update in the candidate cut, follow its advertisement
parents backwards.  A receive without its matching send in the HBG
means some router's I/Os have not arrived yet ("all router I/Os have
not been received and integrated into the HBG, so we may be missing
some FIB updates") — the snapshot is declared inconsistent and the
verifier is told which routers to wait for.  The walk terminates at
FIB updates that do not depend on an advertisement, or when "the
router from which the update was received is external to the
network".

This is a Chandy–Lamport-style consistent-cut condition specialised
to the HBG: the visible event set must be causally closed along
advertisement edges.

Two memoization regimes share the walk:

* **batch** (default): memos are scoped to one :meth:`check` call and
  reset at its top — the historical behaviour, correct for any graph.
* **persistent** (``persistent_memo=True``): memos survive across
  checks so the incremental verifier can re-check one prefix per FIB
  delta at near-constant cost.  Correctness then depends on
  *invalidation*: every cached walk records the event ids and FIB
  buckets it traversed, and :meth:`invalidate_event` /
  :meth:`note_fib_event` drop exactly the entries whose inputs
  changed.  :meth:`invalidate` is the big hammer for rollback replay
  (see docs/INCREMENTAL_VERIFY.md): replaying a capture re-uses event
  ids, so any memo entry may silently describe a different event —
  persistent snapshotters must be invalidated wholesale before a
  replay's events are fed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import HappensBeforeGraph
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.snapshot.base import DataPlaneSnapshot, VerifierView


#: Distinguishes "memoized as absent" from "not yet memoized".
_UNSET: object = object()

#: Sorts after every real event id in the FIB-table bisect probes.
_AFTER_ANY_ID = float("inf")


@dataclass
class ConsistencyReport:
    """Outcome of the §5 consistency check."""

    consistent: bool
    #: Internal routers whose logs the verifier must wait for.
    missing_routers: Set[str] = field(default_factory=set)
    #: Human-readable explanations, one per problem found.
    reasons: List[str] = field(default_factory=list)
    #: Number of walk steps performed (benchmark instrumentation).
    steps: int = 0

    def merge(self, other: "ConsistencyReport") -> None:
        self.consistent = self.consistent and other.consistent
        self.missing_routers.update(other.missing_routers)
        self.reasons.extend(other.reasons)
        self.steps += other.steps


class ConsistentSnapshotter:
    """Snapshots that pass the §5 HBG closure check."""

    def __init__(
        self,
        view: Optional[VerifierView],
        internal_routers: Sequence[str],
        engine: Optional[InferenceEngine] = None,
        inflight_bound: float = 0.1,
        max_unmatched_age: Optional[float] = 30.0,
        persistent_memo: bool = False,
    ):
        self.view = view
        self.internal_routers = set(internal_routers)
        self.engine = engine or InferenceEngine()
        #: Propagation bound used only to phrase the deferral reason
        #: ("in flight" vs "log lagging"); both defer regardless.
        self.inflight_bound = inflight_bound
        #: After this long, an unmatched send is presumed lost (e.g. a
        #: partition swallowed it) and stops deferring snapshots.
        self.max_unmatched_age = max_unmatched_age
        #: Keep memos across checks (the incremental verifier's mode).
        #: The owner must then feed :meth:`note_fib_event` for every
        #: FIB update and :meth:`invalidate_event` for every event
        #: whose in-edges the streaming layer re-inferred; batch
        #: :meth:`snapshot` is unsupported (it builds a fresh graph
        #: per call, which would poison the caches).
        self.persistent_memo = persistent_memo
        # §5 recursion memos, bucketed per prefix (a walk never
        # crosses prefixes: advertisement ancestry follows same-prefix
        # route events only).  Per-prefix buckets make both the batch
        # reset and the persistent invalidation O(1) per bucket.
        # Ancestor entries are (receives, traversed-ids); closure
        # entries are (report, dependency-keys).
        self._ancestor_memo: Dict[
            Optional[Prefix], Dict[int, Tuple[List[IOEvent], frozenset]]
        ] = {}
        self._send_memo: Dict[Optional[Prefix], Dict[int, object]] = {}
        self._closure_memo: Dict[
            Optional[Prefix], Dict[int, Tuple[ConsistencyReport, frozenset]]
        ] = {}
        #: prefix -> dependency key -> memo entries to drop when the
        #: dependency changes.  Keys are traversed event ids, plus
        #: ("fib", router) for FIB-table reads.  Entries for already
        #: dropped memos linger harmlessly (pops are no-ops).
        self._dep_index: Dict[Optional[Prefix], Dict[object, Set[Tuple[str, int]]]] = {}
        #: (router, prefix) -> largest ``when + slack`` cutoff any
        #: cached walk queried the FIB table with; a new FIB event at
        #: or before it can change those walks' answers.
        self._max_cutoff: Dict[Tuple[str, Prefix], float] = {}
        self._fib_table: Optional[
            Dict[Tuple[str, Prefix], List[Tuple[float, int, IOEvent]]]
        ] = {} if persistent_memo else None
        self._memo_hits = 0
        self._memo_misses = 0
        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("snapshot.closure_cache", self)

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of the closure/ancestor caches (ledger)."""
        from repro.obs import resources

        return resources.combined_sizeof(
            (
                self._ancestor_memo,
                self._send_memo,
                self._closure_memo,
                self._dep_index,
                self._fib_table,
            ),
            sample=None if audit else obs.get_ledger().sample,
        )

    # -- public API -------------------------------------------------------

    def snapshot(
        self, at: float, prefix: Optional[Prefix] = None
    ) -> Tuple[DataPlaneSnapshot, ConsistencyReport]:
        """Build the snapshot visible at ``at`` and check consistency.

        With ``prefix`` given, only that prefix's update chains are
        checked (the per-prefix mode the verifier uses when reacting
        to a specific FIB update); otherwise every prefix seen in any
        FIB event is checked.
        """
        if self.persistent_memo:
            raise RuntimeError(
                "snapshot() builds a fresh graph per call and would "
                "poison persistent memos; use check_incremental() "
                "(or a batch snapshotter) instead"
            )
        if self.view is None:
            raise RuntimeError("snapshot() needs a VerifierView")
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        visible = self.view.visible_events(at)
        graph = self.engine.build_graph(visible)
        snapshot = DataPlaneSnapshot.from_fib_events(visible, taken_at=at)
        report = self.check(graph, visible, prefix=prefix, at=at)
        if registry.enabled:
            registry.counter("snapshot.consistency_checks_total").inc()
            if not report.consistent:
                registry.counter("snapshot.inconsistent_total").inc()
            registry.histogram("snapshot.consistency_check_seconds").observe(
                watch.elapsed()
            )
            registry.histogram("snapshot.walk_steps").observe(report.steps)
        return snapshot, report

    def wait_until_consistent(
        self,
        start: float,
        deadline: float,
        step: float = 0.05,
        prefix: Optional[Prefix] = None,
    ) -> Tuple[Optional[DataPlaneSnapshot], ConsistencyReport, float]:
        """§7's remedy: "the verifier can wait until it receives the
        up-to-date HBG from R1 before verifying the data plane."

        Polls forward in time until the snapshot is consistent or the
        deadline passes.  Returns (snapshot-or-None, last report,
        time of the returned snapshot).
        """
        when = start
        with obs.span("snapshot.wait_until_consistent"):
            snapshot, report = self.snapshot(when, prefix=prefix)
            while not report.consistent and when < deadline:
                when = min(deadline, when + step)
                snapshot, report = self.snapshot(when, prefix=prefix)
        registry = obs.get_registry()
        if registry.enabled:
            # Simulated seconds the verifier deferred past ``start``
            # waiting for straggler logs (§7's remedy).
            registry.histogram("snapshot.wait_sim_seconds").observe(
                when - start
            )
            if not report.consistent:
                registry.counter("snapshot.wait_deadline_exceeded_total").inc()
        if report.consistent:
            return snapshot, report, when
        return None, report, when

    # -- persistent-memo maintenance --------------------------------------

    def note_fib_event(self, event: IOEvent) -> None:
        """Incrementally maintain the per-(router, prefix) FIB table.

        The persistent-memo replacement for the lazy batch build in
        :meth:`_latest_fib_before`.  An arrival that lands at or
        before a cutoff some cached walk already queried invalidates
        those walks (the Fig. 1c resolution path: a straggler's FIB
        update finally arrives and flips the verdict).
        """
        if event.kind is not IOKind.FIB_UPDATE or event.prefix is None:
            return
        if self._fib_table is None:
            self._fib_table = {}
        key = (event.router, event.prefix)
        bucket = self._fib_table.setdefault(key, [])
        item = (event.timestamp, event.event_id, event)
        bucket.append(item)
        if len(bucket) > 1 and (bucket[-2][0], bucket[-2][1]) > (
            item[0],
            item[1],
        ):
            # Out-of-order arrival (straggler log): restore order by
            # re-sorting the bucket — rare, and keeps the hot path an
            # append (PERF001's discipline for the snapshot layer).
            bucket.sort(key=lambda it: (it[0], it[1]))
        cutoff = self._max_cutoff.get(key)
        if cutoff is not None and event.timestamp <= cutoff:
            self._drop_dependents(event.prefix, ("fib", event.router))

    def invalidate_event(self, event: IOEvent) -> None:
        """Drop memo entries whose cached walk traversed ``event``.

        Call for every already-observed event whose in-edges the
        streaming layer re-inferred.  Prefix-less events (config /
        hardware) need no invalidation: the walks never read their
        parents (they terminate the ancestry).
        """
        if event.prefix is None:
            return
        self._drop_dependents(event.prefix, event.event_id)

    def invalidate_prefix(self, prefix: Prefix) -> None:
        """Drop every memo entry for one prefix (coarse hook)."""
        self._ancestor_memo.pop(prefix, None)
        self._send_memo.pop(prefix, None)
        self._closure_memo.pop(prefix, None)
        self._dep_index.pop(prefix, None)

    def invalidate(self) -> None:
        """Drop every cached closure, walk and FIB-table entry.

        The rollback-replay hook: a replayed capture re-uses event ids
        (``reset_event_ids``), so after a replay *every* memo entry may
        describe an event that no longer exists — per-(router, prefix)
        keys collide silently and serve stale closures.  Persistent
        snapshotters must be invalidated before replayed events are
        fed (:class:`repro.repair.rollback.RepairEngine` calls this
        for every registered snapshotter after applying reverts).
        """
        self._ancestor_memo = {}
        self._send_memo = {}
        self._closure_memo = {}
        self._dep_index = {}
        self._max_cutoff = {}
        self._fib_table = {} if self.persistent_memo else None

    def _drop_dependents(self, prefix: Optional[Prefix], dep_key) -> None:
        index = self._dep_index.get(prefix)
        if not index:
            return
        entries = index.pop(dep_key, None)
        if not entries:
            return
        for kind, event_id in entries:
            if kind == "clo":
                self._closure_memo.get(prefix, {}).pop(event_id, None)
            elif kind == "anc":
                self._ancestor_memo.get(prefix, {}).pop(event_id, None)
            else:
                self._send_memo.get(prefix, {}).pop(event_id, None)

    def _register_deps(
        self, prefix: Optional[Prefix], entry: Tuple[str, int], deps: Iterable
    ) -> None:
        index = self._dep_index.setdefault(prefix, {})
        for dep in deps:
            index.setdefault(dep, set()).add(entry)

    # -- the §5 walk ------------------------------------------------------------

    def check(
        self,
        graph: HappensBeforeGraph,
        visible: Sequence[IOEvent],
        prefix: Optional[Prefix] = None,
        at: Optional[float] = None,
    ) -> ConsistencyReport:
        if not self.persistent_memo:
            self._ancestor_memo = {}
            self._send_memo = {}
            self._closure_memo = {}
            self._dep_index = {}
            self._max_cutoff = {}
            self._fib_table = None
        fib_events = [
            e
            for e in visible
            if e.kind is IOKind.FIB_UPDATE
            and e.prefix is not None
            and (prefix is None or e.prefix == prefix)
            and e.protocol in ("ebgp", "ibgp", "bgp")
        ]
        # Only the *latest* FIB event per (router, prefix) is part of
        # the cut; superseded ones need no closure.
        latest: Dict[Tuple[str, Prefix], IOEvent] = {}
        for event in fib_events:
            key = (event.router, event.prefix)
            current = latest.get(key)
            if current is None or (event.timestamp, event.event_id) > (
                current.timestamp,
                current.event_id,
            ):
                latest[key] = event
        return self._run_check(graph, latest.values(), visible, prefix, at)

    def check_incremental(
        self,
        graph: HappensBeforeGraph,
        cut_events: Iterable[IOEvent],
        sends: Sequence[IOEvent],
        prefix: Optional[Prefix] = None,
        at: Optional[float] = None,
    ) -> ConsistencyReport:
        """Scoped §5 check over a pre-filtered cut (incremental feed).

        ``cut_events`` are the latest FIB updates per (router, prefix)
        — the cut front — and ``sends`` the candidate unmatched sends;
        the incremental verifier maintains both per prefix so this
        check never scans the full visible stream.  Verdicts
        (``consistent`` + ``missing_routers``) equal :meth:`check`'s
        on the same graph and cut; ``reasons`` may repeat entries and
        ``steps`` reflects only un-memoized work.
        """
        return self._run_check(graph, cut_events, sends, prefix, at)

    def _run_check(
        self,
        graph: HappensBeforeGraph,
        cut_events: Iterable[IOEvent],
        sends: Sequence[IOEvent],
        prefix: Optional[Prefix],
        at: Optional[float],
    ) -> ConsistencyReport:
        self._memo_hits = 0
        self._memo_misses = 0
        report = ConsistencyReport(consistent=True)
        if at is not None:
            self._check_send_closure(graph, sends, prefix, at, report)
        visited: Set[int] = set()
        track = self.persistent_memo
        for event in cut_events:
            deps: Optional[Set] = set() if track else None
            sub = self._walk_fib_update(graph, event, visited, deps)
            report.merge(sub)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("snapshot.closure_cache_hits").inc(
                self._memo_hits
            )
            registry.counter("snapshot.closure_cache_misses").inc(
                self._memo_misses
            )
        return report

    def _check_send_closure(
        self,
        graph: HappensBeforeGraph,
        sends: Sequence[IOEvent],
        prefix: Optional[Prefix],
        at: float,
        report: ConsistencyReport,
    ) -> None:
        """The dual of the receive walk: sends need matching receives.

        A visible [R' send U to N] with no visible [N receive U] means
        either U is still in flight or N's log stream is lagging.  The
        verifier cannot distinguish the two without heartbeats, and
        only the former matches reality — so *both* defer the
        snapshot: the cut may show N's FIB arbitrarily stale, which is
        how phantom black holes at transit routers arise.  The small
        cost is deferring a few propagation-delays' worth of probes
        even under zero log lag.

        ``sends`` may be any event sequence (the batch path passes the
        whole visible stream; the incremental path passes only its
        maintained unmatched-send set) — non-qualifying events are
        filtered here.

        Known limitation: an advertisement permanently lost in the
        network (e.g. sent just as a partition formed) defers this
        prefix's snapshots until ``max_unmatched_age`` passes, after
        which the send is presumed dead and ignored.
        """
        slack = self.inflight_bound + self.engine.config.clock_skew_tolerance
        for send in sends:
            if send.kind is not IOKind.ROUTE_SEND:
                continue
            if send.protocol != "bgp":
                continue
            if send.peer not in self.internal_routers:
                continue
            if prefix is not None and send.prefix != prefix:
                continue
            if (
                self.max_unmatched_age is not None
                and at > send.timestamp + self.max_unmatched_age
            ):
                continue  # presumed lost in a partition; give up waiting
            report.steps += 1
            received = any(
                child.kind is IOKind.ROUTE_RECEIVE
                for child, _evidence in graph.children(send.event_id)
            )
            if not received:
                report.consistent = False
                report.missing_routers.add(send.peer)
                in_flight = at < send.timestamp + slack
                why = (
                    "may still be in flight"
                    if in_flight
                    else "has not reached the verifier"
                )
                report.reasons.append(
                    f"{send.router} sent {send.action.value if send.action else '?'} "
                    f"for {send.prefix} to {send.peer} at {send.timestamp:.3f}s "
                    f"but {send.peer}'s receive {why}"
                )

    def _walk_fib_update(
        self,
        graph: HappensBeforeGraph,
        fib_event: IOEvent,
        visited: Set[int],
        deps: Optional[Set] = None,
    ) -> ConsistencyReport:
        """One recursion step of the §5 algorithm.

        ``visited`` doubles as the subwalk memo: chains from several
        cut fronts funnel into the same upstream FIB updates, and a
        subwalk already closed under this snapshot need not be redone
        (its verdict is already merged into the report).

        With ``deps`` given (persistent mode), the closed subwalk's
        verdict is additionally cached across checks, keyed by this
        FIB event, with every traversed event id and FIB-table bucket
        recorded as a dependency; ``deps`` accumulates them so callers
        inherit their subtree's dependencies transitively.  Returned
        reports are read-only — persistent mode hands back the cached
        objects themselves (``merge`` never mutates its argument).
        """
        event_id = fib_event.event_id
        prefix = fib_event.prefix
        if event_id in visited:
            self._memo_hits += 1
            if deps is not None:
                cached = self._closure_memo.get(prefix, {}).get(event_id)
                if cached is not None:
                    deps |= cached[1]
                else:
                    deps.add(event_id)
            return ConsistencyReport(consistent=True)
        if deps is not None:
            cached = self._closure_memo.get(prefix, {}).get(event_id)
            if cached is not None:
                self._memo_hits += 1
                visited.add(event_id)
                deps |= cached[1]
                return cached[0]
        self._memo_misses += 1
        visited.add(event_id)
        local: Optional[Set] = set() if deps is not None else None
        if local is not None:
            local.add(event_id)
        report = ConsistencyReport(consistent=True)
        report.steps += 1
        receives = self._advertisement_ancestors(graph, fib_event, local)
        for recv in receives:
            report.steps += 1
            sender = recv.peer
            if sender is None or sender not in self.internal_routers:
                # "...the router from which the update was received is
                # external to the network" — the walk terminates here.
                continue
            send = self._matching_send(graph, recv, local)
            if send is None:
                report.consistent = False
                report.missing_routers.add(sender)
                report.reasons.append(
                    f"{recv.router}'s HBG contains a route for "
                    f"{recv.prefix} via {sender} that has not been "
                    f"announced in the HBG received from {sender}"
                )
                continue
            # BGP property: the sender installed its FIB before
            # sending.  Its FIB update must therefore be visible.
            sender_fib = self._latest_fib_before(
                graph, sender, recv.prefix, send.timestamp, local
            )
            if sender_fib is None:
                report.consistent = False
                report.missing_routers.add(sender)
                report.reasons.append(
                    f"{sender} announced {recv.prefix} but its own FIB "
                    f"update has not reached the verifier"
                )
                continue
            sub = self._walk_fib_update(graph, sender_fib, visited, local)
            report.merge(sub)
        if deps is not None:
            frozen = frozenset(local)
            self._closure_memo.setdefault(prefix, {})[event_id] = (
                report,
                frozen,
            )
            self._register_deps(prefix, ("clo", event_id), frozen)
            deps |= frozen
        return report

    def _advertisement_ancestors(
        self,
        graph: HappensBeforeGraph,
        fib_event: IOEvent,
        deps: Optional[Set] = None,
    ) -> List[IOEvent]:
        """ROUTE_RECEIVE ancestors of ``fib_event`` for the same prefix,
        reached without crossing another FIB update (i.e. the receive
        that this particular FIB change depends on).

        The walk is pure in (event, prefix) for a fixed graph, so the
        closed subwalk is memoized — cut fronts for the same prefix on
        different routers funnel into the same advertisement ancestry
        over and over.  In persistent mode the traversed event ids are
        the entry's dependencies: re-linking any of them drops it.
        """
        memo = self._ancestor_memo.setdefault(fib_event.prefix, {})
        cached = memo.get(fib_event.event_id)
        if cached is not None:
            self._memo_hits += 1
            if deps is not None:
                deps |= cached[1]
            return cached[0]
        self._memo_misses += 1
        result: List[IOEvent] = []
        stack = [fib_event.event_id]
        seen = {fib_event.event_id}
        while stack:
            node = stack.pop()
            for parent, _evidence in graph.parents(node):
                if parent.event_id in seen:
                    continue
                seen.add(parent.event_id)
                if parent.kind is IOKind.ROUTE_RECEIVE:
                    if parent.prefix == fib_event.prefix:
                        result.append(parent)
                    continue
                if parent.kind in (IOKind.RIB_UPDATE,):
                    stack.append(parent.event_id)
                # CONFIG_CHANGE / HARDWARE_STATUS parents terminate the
                # walk: the FIB update did not depend on an
                # advertisement along this path.
        frozen = frozenset(seen) if deps is not None else frozenset()
        memo[fib_event.event_id] = (result, frozen)
        if deps is not None:
            self._register_deps(
                fib_event.prefix, ("anc", fib_event.event_id), frozen
            )
            deps |= frozen
        return result

    def _matching_send(
        self,
        graph: HappensBeforeGraph,
        recv: IOEvent,
        deps: Optional[Set] = None,
    ) -> Optional[IOEvent]:
        if deps is not None:
            deps.add(recv.event_id)
        memo = self._send_memo.setdefault(recv.prefix, {})
        cached = memo.get(recv.event_id, _UNSET)
        if cached is not _UNSET:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        found: Optional[IOEvent] = None
        for parent, _evidence in graph.parents(recv.event_id):
            if (
                parent.kind is IOKind.ROUTE_SEND
                and parent.router == recv.peer
                and parent.prefix == recv.prefix
            ):
                found = parent
                break
        memo[recv.event_id] = found
        if deps is not None:
            self._register_deps(
                recv.prefix, ("snd", recv.event_id), (recv.event_id,)
            )
        return found

    def _latest_fib_before(
        self,
        graph: HappensBeforeGraph,
        router: str,
        prefix: Optional[Prefix],
        when: float,
        deps: Optional[Set] = None,
    ) -> Optional[IOEvent]:
        """Newest FIB update on ``router`` for ``prefix`` at ``when``.

        Answered from a per-(router, prefix) sorted table — built once
        per check() in batch mode (the naive per-query scan of every
        one of the router's events dominated large-network snapshot
        checks), maintained by :meth:`note_fib_event` in persistent
        mode.
        """
        if self._fib_table is None:
            table: Dict[
                Tuple[str, Prefix], List[Tuple[float, int, IOEvent]]
            ] = {}
            for event in graph.events():
                if event.kind is not IOKind.FIB_UPDATE:
                    continue
                if event.prefix is None:
                    continue
                table.setdefault((event.router, event.prefix), []).append(
                    (event.timestamp, event.event_id, event)
                )
            # graph.events() yields in event-id order; per-bucket sort
            # restores the (timestamp, id) order the bisect needs.
            for bucket in table.values():
                bucket.sort(key=lambda item: (item[0], item[1]))
            self._fib_table = table
        if prefix is None:
            return None
        slack = self.engine.config.clock_skew_tolerance
        cutoff = when + slack
        if deps is not None:
            deps.add(("fib", router))
            key = (router, prefix)
            current = self._max_cutoff.get(key)
            if current is None or cutoff > current:
                self._max_cutoff[key] = cutoff
        bucket = self._fib_table.get((router, prefix))
        if not bucket:
            return None
        cut = bisect_right(bucket, (cutoff, _AFTER_ANY_ID))
        if cut == 0:
            return None
        return bucket[cut - 1][2]
