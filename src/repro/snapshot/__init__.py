"""Data-plane snapshots: naive (baseline) and HBG-consistent (§5).

A data-plane verifier needs "a snapshot that reflects the FIB entries
a packet would encounter as it traverses the network at a specific
instance in time" (§5).  :mod:`repro.snapshot.naive` reconstructs the
latest-known FIB state per router — what existing verifiers do, and
what produces the phantom loop of Fig. 1c.  :mod:`repro.snapshot.
consistent` adds the paper's HBG-based consistency check and refuses
to hand a snapshot to the verifier until every router whose FIB could
have been influenced by an in-flight update has reported in.
"""

from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry, VerifierView
from repro.snapshot.naive import NaiveSnapshotter
from repro.snapshot.consistent import ConsistencyReport, ConsistentSnapshotter

__all__ = [
    "ConsistencyReport",
    "ConsistentSnapshotter",
    "DataPlaneSnapshot",
    "NaiveSnapshotter",
    "SnapshotEntry",
    "VerifierView",
]
