"""Indexed candidate lookup for HBR inference.

The paper's premise is that HBG construction runs *online inside the
control plane* (§4–§5), which rules out re-scanning a time window of
every captured I/O for each rule on each event.  Delta-net (see
PAPERS.md) makes the same argument for data-plane verification: real
time hinges on incremental, indexed state rather than rescans.  This
module supplies the two pieces the inference engine needs:

* :class:`SortedEventList` — an order-maintaining container keyed by
  ``(timestamp, event_id)``.  It is a miniature list-of-chunks sorted
  sequence (the classic ``SortedContainers`` layout): inserts bisect
  into a bounded chunk, so the per-event cost is O(sqrt N) instead of
  the O(N) ``list.insert`` the streaming path used to pay.
* :class:`EventIndex` — inverted indices over the event stream keyed
  by ``(router, kind)``, ``(router, kind, prefix)`` and ``(kind,)``,
  each bucket a :class:`SortedEventList`.  A rule whose antecedent
  constrains router/kind/prefix reads only its bucket's time window
  instead of the whole stream's.
* :class:`RulePlan` / :func:`plan_for_rule` — the per-rule query plan:
  which bucket a rule's antecedent can be answered from, precomputed
  once so the hot path does no reflection.

Every query yields events in ``(timestamp, event_id)`` order — the
exact order the legacy full-scan produced — so the indexed path is
drop-in equivalent (the ``hbg-indexed-equivalence`` testkit oracle
and tests/test_hbr_index.py hold it to that).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.rules import (
    HbrRule,
    peer_symmetric,
    same_prefix,
    same_router,
)

#: Key type: ``(timestamp, event_id)`` — the engine's canonical order.
Key = Tuple[float, int]

#: Sentinel event id sorting after every real id at equal timestamps.
MAX_ID = float("inf")

#: Chunk split threshold.  Chunks are kept at most this long, so the
#: bounded ``list.insert`` inside a chunk moves at most _CHUNK items.
_CHUNK = 512


class SortedEventList:
    """Events kept sorted by ``(timestamp, event_id)``.

    List-of-chunks layout: ``_maxes[i]`` caches the largest key in
    ``_chunks[i]``; ``add`` bisects to the right chunk and then within
    it, splitting chunks that exceed ``2 * _CHUNK``.  Appending in
    (mostly) timestamp order — the common streaming case — hits the
    tail-append fast path.
    """

    __slots__ = ("_chunks", "_maxes", "_len")

    def __init__(self) -> None:
        self._chunks: List[List[Tuple[float, int, IOEvent]]] = []
        self._maxes: List[Key] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def add(self, event: IOEvent) -> None:
        entry = (event.timestamp, event.event_id, event)
        key = (event.timestamp, event.event_id)
        if not self._chunks:
            self._chunks.append([entry])
            self._maxes.append(key)
            self._len += 1
            return
        if key >= self._maxes[-1]:
            # Tail append — the common case for in-order arrival.
            position = len(self._chunks) - 1
            chunk = self._chunks[position]
            chunk.append(entry)
            self._maxes[position] = key
        else:
            position = bisect_left(self._maxes, key)
            chunk = self._chunks[position]
            # Bounded by the chunk-split threshold, so this is the
            # sanctioned O(sqrt N) positional insert.  Event ids are
            # unique, so tuple comparison settles on (timestamp, id)
            # and never reaches the IOEvent element.
            insort(chunk, entry)  # repro: lint-ignore[PERF001] -- bounded chunk
        self._len += 1
        if len(chunk) > 2 * _CHUNK:
            self._split(position)

    def _split(self, position: int) -> None:
        chunk = self._chunks[position]
        half = len(chunk) // 2
        left, right = chunk[:half], chunk[half:]
        self._chunks[position] = left
        self._chunks.insert(position + 1, right)  # repro: lint-ignore[PERF001] -- O(#chunks)
        self._maxes[position] = (left[-1][0], left[-1][1])
        self._maxes.insert(position + 1, (right[-1][0], right[-1][1]))  # repro: lint-ignore[PERF001] -- O(#chunks)

    def irange(self, lo: Key, hi: Key) -> Iterator[IOEvent]:
        """Yield events with ``lo <= (timestamp, event_id) <= hi``."""
        if not self._chunks or lo > hi:
            return
        start = bisect_left(self._maxes, lo)
        for index in range(start, len(self._chunks)):
            chunk = self._chunks[index]
            if (chunk[0][0], chunk[0][1]) > hi:
                return
            begin = 0
            if index == start:
                begin = bisect_left(chunk, (lo[0], lo[1], _KEY_FLOOR))
            for ts, event_id, event in chunk[begin:]:
                if (ts, event_id) > hi:
                    return
                yield event

    def __iter__(self) -> Iterator[IOEvent]:
        for chunk in self._chunks:
            for _ts, _event_id, event in chunk:
                yield event


class _KeyFloor:
    """Sorts below any IOEvent so range bisects never compare events."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False


_KEY_FLOOR = _KeyFloor()


@dataclass(frozen=True)
class RulePlan:
    """Precomputed query plan for one rule's antecedent lookup.

    ``router_from`` says which field of the *consequent* names the
    antecedent's router: ``"same"`` (same_router relation),
    ``"peer"`` (peer_symmetric), or ``"any"`` (no router constraint —
    falls back to the per-kind or global index).  ``prefix_narrowed``
    is True when the same_prefix relation lets the lookup use the
    per-prefix bucket.
    """

    router_from: str
    kinds: Tuple[IOKind, ...]
    prefix_narrowed: bool

    def router_key(self, cons: IOEvent) -> Optional[str]:
        if self.router_from == "same":
            return cons.router
        if self.router_from == "peer":
            return cons.peer
        return None


def plan_for_rule(rule: HbrRule) -> RulePlan:
    """Derive the index lookup plan from a rule's declarative shape.

    Only the stock relation predicates of :mod:`repro.hbr.rules` are
    recognised (by identity); a rule built from custom predicates
    plans conservatively and the index answers it from the wider
    per-kind (or global) bucket — still correct, just less narrow.
    """
    relations = rule.relations
    if same_router in relations:
        router_from = "same"
    elif peer_symmetric in relations:
        router_from = "peer"
    else:
        router_from = "any"
    return RulePlan(
        router_from=router_from,
        kinds=tuple(rule.antecedent.kinds),
        prefix_narrowed=(
            same_prefix in relations and router_from != "any"
        ),
    )


def forward_plan_for_rule(rule: HbrRule) -> RulePlan:
    """The mirror of :func:`plan_for_rule`: given an *antecedent*
    event, which buckets can hold the rule's consequents?

    Reuses :class:`RulePlan` because the field access is symmetric:
    ``same_router`` means the consequent lives under the antecedent's
    router, and ``peer_symmetric`` (``a.peer == b.router``) means it
    lives under the antecedent's ``peer``.  Streaming full_relink uses
    this to find the already-observed events a late-arriving cause
    must re-link, without scanning the whole re-link window.
    """
    relations = rule.relations
    if same_router in relations:
        router_from = "same"
    elif peer_symmetric in relations:
        router_from = "peer"
    else:
        router_from = "any"
    return RulePlan(
        router_from=router_from,
        kinds=tuple(rule.consequent.kinds),
        prefix_narrowed=(
            same_prefix in relations and router_from != "any"
        ),
    )


class EventIndex:
    """Inverted per-(router, kind[, prefix]) indices over the stream.

    ``add`` registers one event in every bucket it belongs to;
    :meth:`candidates` answers a :class:`RulePlan` from the narrowest
    bucket that covers it.  All answers come back in
    ``(timestamp, event_id)`` order.
    """

    # ``__weakref__`` so the resource ledger can hold this index
    # without extending its lifetime.
    __slots__ = ("_all", "_by_kind", "_by_router_kind", "_by_rkp", "__weakref__")

    def __init__(self) -> None:
        self._all = SortedEventList()
        self._by_kind: Dict[IOKind, SortedEventList] = {}
        self._by_router_kind: Dict[Tuple[str, IOKind], SortedEventList] = {}
        self._by_rkp: Dict[
            Tuple[str, IOKind, object], SortedEventList
        ] = {}

    def track(self) -> "EventIndex":
        """Register with the resource ledger; returns ``self``.

        Registration is explicit rather than a constructor side
        effect because indices are also built inside forked shard
        workers (repro.hbr.sharded), where a ledger registration
        would mutate the doomed forked copy and silently vanish at
        join — lint rule CONC001 checks exactly this.  Only
        parent-process owners call ``track()``.
        """
        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("hbr.index", self)
        return self

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of every bucket (ledger callback).

        The per-kind/per-router buckets share chunk entries with
        ``_all`` only at the tuple level — each bucket owns its own
        chunk lists — so the walk's shared-object dedup does the
        right thing without special-casing.
        """
        from repro.obs import resources

        return resources.combined_sizeof(
            (self._all, self._by_kind, self._by_router_kind, self._by_rkp),
            sample=None if audit else obs.get_ledger().sample,
        )

    def __len__(self) -> int:
        return len(self._all)

    def add(self, event: IOEvent) -> None:
        self._all.add(event)
        kind = event.kind
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = SortedEventList()
        bucket.add(event)
        rk = (event.router, kind)
        bucket = self._by_router_kind.get(rk)
        if bucket is None:
            bucket = self._by_router_kind[rk] = SortedEventList()
        bucket.add(event)
        if event.prefix is not None:
            rkp = (event.router, kind, event.prefix)
            bucket = self._by_rkp.get(rkp)
            if bucket is None:
                bucket = self._by_rkp[rkp] = SortedEventList()
            bucket.add(event)

    # -- queries -----------------------------------------------------------

    def window(self, lo: Key, hi: Key) -> Iterator[IOEvent]:
        """All events in the key range (the naive/pattern-mode scan)."""
        return self._all.irange(lo, hi)

    def after(self, key: Key, hi: Key) -> Iterator[IOEvent]:
        """Events strictly after ``key`` up to ``hi`` inclusive —
        the streaming skew-horizon re-link query."""
        return self._all.irange((key[0], key[1] + 1), hi)

    def candidates(
        self, plan: RulePlan, cons: IOEvent, lo: Key, hi: Key
    ) -> List[IOEvent]:
        """Events in the window that the plan's buckets can contain.

        Returns a superset of the rule's true antecedents (the engine
        still applies ``rule.pair_matches``), narrowed as far as the
        plan allows, in ``(timestamp, event_id)`` order.
        """
        if plan.router_from == "any":
            if not plan.kinds:
                return list(self._all.irange(lo, hi))
            buckets = [
                self._by_kind.get(kind) for kind in plan.kinds
            ]
        else:
            router = plan.router_key(cons)
            if router is None:
                # peer_symmetric with no peer on the consequent: no
                # event can satisfy the relation.
                return []
            if plan.prefix_narrowed:
                if cons.prefix is None:
                    # same_prefix requires a concrete shared prefix.
                    return []
                buckets = [
                    self._by_rkp.get((router, kind, cons.prefix))
                    for kind in plan.kinds
                ]
            else:
                buckets = [
                    self._by_router_kind.get((router, kind))
                    for kind in plan.kinds
                ]
        live = [b for b in buckets if b is not None]
        if not live:
            return []
        if len(live) == 1:
            return list(live[0].irange(lo, hi))
        merged: List[Tuple[float, int, IOEvent]] = []
        for bucket in live:
            merged.extend(
                (e.timestamp, e.event_id, e)
                for e in bucket.irange(lo, hi)
            )
        merged.sort(key=lambda item: (item[0], item[1]))
        return [event for _ts, _eid, event in merged]
