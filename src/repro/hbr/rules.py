"""Declarative HBR rules (§4.1 / §4.2 "Rule matching").

    "Given an I/O that matches the right-hand-side of a rule, we can
    search the (timestamp- and prefix-filtered) stream of I/Os for an
    I/O that matches the left-hand-side of the rule."

A rule has two :class:`EventPattern` sides plus a *relation* between
the matched pair (same router, peer-symmetric, matching action, ...).
The default rule set encodes the generic HBRs that "apply to all
common distributed routing protocols" plus the BGP- and OSPF-specific
ones, including the paper's example contrast: with BGP the RIB entry
precedes the advertisement, whereas an EIGRP-style protocol
advertises only after the FIB install.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.capture.io_events import IOEvent, IOKind, RouteAction

#: Extra pair predicate: (antecedent, consequent) -> bool.
PairPredicate = Callable[[IOEvent, IOEvent], bool]


@dataclass(frozen=True)
class EventPattern:
    """A predicate over single events, built from field constraints."""

    kinds: Tuple[IOKind, ...] = ()
    protocols: Tuple[Optional[str], ...] = ()
    actions: Tuple[Optional[RouteAction], ...] = ()
    requires_prefix: Optional[bool] = None

    def matches(self, event: IOEvent) -> bool:
        if self.kinds and event.kind not in self.kinds:
            return False
        if self.protocols and event.protocol not in self.protocols:
            return False
        if self.actions and event.action not in self.actions:
            return False
        if self.requires_prefix is True and event.prefix is None:
            return False
        if self.requires_prefix is False and event.prefix is not None:
            return False
        return True


def same_router(a: IOEvent, b: IOEvent) -> bool:
    return a.router == b.router

def different_router(a: IOEvent, b: IOEvent) -> bool:
    return a.router != b.router


def same_prefix(a: IOEvent, b: IOEvent) -> bool:
    return a.prefix is not None and a.prefix == b.prefix


def peer_symmetric(a: IOEvent, b: IOEvent) -> bool:
    """a is a send to b.router, b is a receive from a.router."""
    return a.peer == b.router and b.peer == a.router


def same_action(a: IOEvent, b: IOEvent) -> bool:
    return a.action == b.action


def same_lsa(a: IOEvent, b: IOEvent) -> bool:
    """Both events refer to the same LSA instance (origin, seq)."""
    return (
        a.attr("lsa_origin") is not None
        and a.attr("lsa_origin") == b.attr("lsa_origin")
        and a.attr("lsa_seq") == b.attr("lsa_seq")
    )


@dataclass(frozen=True)
class HbrRule:
    """One happens-before rule: antecedent → consequent.

    ``window`` bounds how far back (in seconds) the antecedent may
    have occurred; ``pick`` selects among multiple candidates:
    ``latest`` (default — the most recent plausible cause) or ``all``.
    """

    name: str
    antecedent: EventPattern
    consequent: EventPattern
    relations: Tuple[PairPredicate, ...] = ()
    window: float = 5.0
    pick: str = "latest"
    base_confidence: float = 1.0

    def pair_matches(self, ante: IOEvent, cons: IOEvent) -> bool:
        if not self.antecedent.matches(ante):
            return False
        if not self.consequent.matches(cons):
            return False
        for relation in self.relations:
            if not relation(ante, cons):
                return False
        return True


#: Window generous enough to span the ~25 s config→reconfiguration lag
#: the paper measured ("surprisingly far apart (25s)", §7).
CONFIG_WINDOW = 60.0


def default_rules() -> Tuple[HbrRule, ...]:
    """The built-in rule set covering §4.1's generic + specific HBRs."""
    route_recv = EventPattern(kinds=(IOKind.ROUTE_RECEIVE,))
    route_send = EventPattern(kinds=(IOKind.ROUTE_SEND,))
    rib_update = EventPattern(kinds=(IOKind.RIB_UPDATE,))
    fib_update = EventPattern(kinds=(IOKind.FIB_UPDATE,))
    config_change = EventPattern(kinds=(IOKind.CONFIG_CHANGE,))
    hw_status = EventPattern(kinds=(IOKind.HARDWARE_STATUS,))

    bgp_recv = EventPattern(kinds=(IOKind.ROUTE_RECEIVE,), protocols=("bgp",))
    bgp_send = EventPattern(kinds=(IOKind.ROUTE_SEND,), protocols=("bgp",))
    bgp_rib = EventPattern(kinds=(IOKind.RIB_UPDATE,), protocols=("bgp",))
    ospf_recv = EventPattern(kinds=(IOKind.ROUTE_RECEIVE,), protocols=("ospf",))
    ospf_send = EventPattern(kinds=(IOKind.ROUTE_SEND,), protocols=("ospf",))
    ospf_rib = EventPattern(kinds=(IOKind.RIB_UPDATE,), protocols=("ospf",))
    eigrp_recv = EventPattern(kinds=(IOKind.ROUTE_RECEIVE,), protocols=("eigrp",))
    eigrp_send = EventPattern(kinds=(IOKind.ROUTE_SEND,), protocols=("eigrp",))
    eigrp_rib = EventPattern(kinds=(IOKind.RIB_UPDATE,), protocols=("eigrp",))
    eigrp_fib = EventPattern(kinds=(IOKind.FIB_UPDATE,), protocols=("eigrp",))

    return (
        # Generic: [R receive C advertisement for P] -> [R install P in C RIB]
        HbrRule(
            name="recv-before-rib",
            antecedent=bgp_recv,
            consequent=bgp_rib,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
        # Generic: [R install P in C RIB] -> [R install P in FIB]
        HbrRule(
            name="rib-before-fib",
            antecedent=rib_update,
            consequent=fib_update,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
        # Generic: [R' send C advertisement for P] -> [R receive it]
        HbrRule(
            name="send-before-recv",
            antecedent=EventPattern(
                kinds=(IOKind.ROUTE_SEND,), protocols=("bgp",)
            ),
            consequent=EventPattern(
                kinds=(IOKind.ROUTE_RECEIVE,), protocols=("bgp",)
            ),
            relations=(different_router, same_prefix, peer_symmetric, same_action),
            window=2.0,
        ),
        # BGP-specific: [R install P in BGP RIB] -> [R send BGP ad for P]
        # (contrast with EIGRP, where the FIB install precedes the send)
        HbrRule(
            name="bgp-rib-before-send",
            antecedent=bgp_rib,
            consequent=bgp_send,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
        # Config: [R config change] -> [R update P in C RIB] for any
        # protocol (BGP soft reconfiguration ~25 s; OSPF cost changes;
        # DV originations).
        HbrRule(
            name="config-before-rib",
            antecedent=config_change,
            consequent=rib_update,
            relations=(same_router,),
            window=CONFIG_WINDOW,
        ),
        # Hardware: [R link status] -> [R RIB change] (session drop)
        HbrRule(
            name="hw-before-rib",
            antecedent=hw_status,
            consequent=rib_update,
            relations=(same_router,),
            window=2.0,
        ),
        # Hardware: [R link status] -> [R FIB change] (connected route)
        HbrRule(
            name="hw-before-fib",
            antecedent=hw_status,
            consequent=EventPattern(
                kinds=(IOKind.FIB_UPDATE,), protocols=("connected",)
            ),
            relations=(same_router,),
            window=2.0,
        ),
        # OSPF: [R receive LSA] -> [R update P in OSPF RIB] (SPF).
        # SPF runs are debounced: *every* LSA received since the last
        # run contributes to the result, so all candidates are linked.
        HbrRule(
            name="ospf-recv-before-rib",
            antecedent=ospf_recv,
            consequent=ospf_rib,
            relations=(same_router,),
            window=0.25,
            pick="all",
            base_confidence=0.9,
        ),
        # OSPF flooding: [R receive LSA] -> [R re-send same LSA]
        HbrRule(
            name="ospf-recv-before-flood",
            antecedent=ospf_recv,
            consequent=ospf_send,
            relations=(same_router, same_lsa),
            window=2.0,
        ),
        # OSPF: [R' send LSA] -> [R receive LSA]
        HbrRule(
            name="ospf-send-before-recv",
            antecedent=ospf_send,
            consequent=ospf_recv,
            relations=(different_router, peer_symmetric, same_lsa),
            window=2.0,
        ),
        # Hardware: [R link status] -> [R send LSA / withdrawal]
        HbrRule(
            name="hw-before-send",
            antecedent=hw_status,
            consequent=route_send,
            relations=(same_router,),
            window=2.0,
        ),
        # Config: [R config change] -> [R send advertisement]
        # Covers originations triggered directly by config (e.g. a new
        # ``network`` statement) that do not pass through a prior
        # captured RIB event.
        HbrRule(
            name="config-before-send",
            antecedent=config_change,
            consequent=bgp_send,
            relations=(same_router,),
            window=CONFIG_WINDOW,
            base_confidence=0.8,
        ),
        # Config: [R config change] -> [R FIB update] (statics)
        HbrRule(
            name="config-before-fib",
            antecedent=config_change,
            consequent=EventPattern(
                kinds=(IOKind.FIB_UPDATE,), protocols=("static",)
            ),
            relations=(same_router,),
            window=CONFIG_WINDOW,
        ),
        # EIGRP-style DV: [R receive update] -> [R update P in DV RIB]
        HbrRule(
            name="eigrp-recv-before-rib",
            antecedent=eigrp_recv,
            consequent=eigrp_rib,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
        # EIGRP-specific (the §4.1 contrast with BGP): the FIB install
        # happens before the advertisement is sent.
        HbrRule(
            name="eigrp-fib-before-send",
            antecedent=eigrp_fib,
            consequent=eigrp_send,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
        # EIGRP: [R' send update] -> [R receive update]
        HbrRule(
            name="eigrp-send-before-recv",
            antecedent=eigrp_send,
            consequent=eigrp_recv,
            relations=(different_router, same_prefix, peer_symmetric, same_action),
            window=2.0,
        ),
        # Recursive resolution: [R update N in IGP RIB] -> [R update P
        # in FIB] where P's BGP next hop resolves through N.  This is
        # the documented exception to the prefix filter (§4.2 notes
        # prefixes only *filter* candidates): the affected FIB prefix
        # differs from the IGP prefix that moved it.  Kept at reduced
        # confidence since the resolution linkage is not observable.
        HbrRule(
            name="igp-resolution-before-fib",
            antecedent=ospf_rib,
            consequent=EventPattern(
                kinds=(IOKind.FIB_UPDATE,), protocols=("ibgp", "ebgp")
            ),
            relations=(same_router,),
            window=0.2,
            pick="all",
            base_confidence=0.6,
        ),
        # Redistribution: [R update P in IGP RIB] -> [R update P in
        # BGP RIB] (§4.1's "route redistribution ... mechanisms").
        HbrRule(
            name="redistribute-rib-to-rib",
            antecedent=EventPattern(
                kinds=(IOKind.RIB_UPDATE,), protocols=("ospf", "eigrp")
            ),
            consequent=bgp_rib,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
    )


def eigrp_style_rules() -> Tuple[HbrRule, ...]:
    """The EIGRP-flavoured ordering of §4.1 for an hypothetical
    protocol tagged ``eigrp``: FIB install precedes the send."""
    eigrp_fib = EventPattern(kinds=(IOKind.FIB_UPDATE,), protocols=("eigrp",))
    eigrp_send = EventPattern(kinds=(IOKind.ROUTE_SEND,), protocols=("eigrp",))
    return (
        HbrRule(
            name="eigrp-fib-before-send",
            antecedent=eigrp_fib,
            consequent=eigrp_send,
            relations=(same_router, same_prefix),
            window=2.0,
        ),
    )
