"""The happens-before graph (HBG) of §4.3.

    "Vertices correspond to specific control plane I/Os, and directed
    edges represent HBRs."

The HBG is a DAG by construction (edges always point forward in the
cause→effect direction; cycles are rejected at insertion).  Each edge
carries :class:`EdgeEvidence` recording *which* inference technique
produced it and with what confidence — §4.2 proposes "adapting the
behavior of our system according to a statistical confidence attached
to each inferred HBR", so confidence is first-class here and every
traversal can be thresholded.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent


class HbgError(ValueError):
    """Raised for invalid HBG operations (unknown vertex, cycle...)."""


@dataclass(frozen=True)
class EdgeEvidence:
    """Provenance of one inferred HBR edge."""

    technique: str  # "rule" | "pattern" | "ground_truth" | ...
    rule: str = ""
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise HbgError(f"confidence out of range: {self.confidence}")


@dataclass(frozen=True)
class Edge:
    """A directed happens-before edge: cause -> effect."""

    cause: int
    effect: int
    evidence: EdgeEvidence


class HappensBeforeGraph:
    """A DAG of control-plane I/O events."""

    def __init__(self) -> None:
        self._events: Dict[int, IOEvent] = {}
        self._out: Dict[int, Dict[int, EdgeEvidence]] = defaultdict(dict)
        self._in: Dict[int, Dict[int, EdgeEvidence]] = defaultdict(dict)
        # Maintained on every insert/delete so edge_count() is O(1):
        # the streaming pipeline reads it once per observed event.
        self._edge_total = 0
        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("hbr.graph", self)

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of vertices + adjacency (ledger callback)."""
        from repro.obs import resources

        return resources.combined_sizeof(
            (self._events, self._out, self._in),
            sample=None if audit else obs.get_ledger().sample,
        )

    # -- construction ------------------------------------------------------

    def add_event(self, event: IOEvent) -> None:
        """Add a vertex (idempotent for the same event id)."""
        existing = self._events.get(event.event_id)
        if existing is not None and existing is not event and existing != event:
            raise HbgError(f"conflicting events for id {event.event_id}")
        self._events[event.event_id] = event

    def add_edge(
        self, cause_id: int, effect_id: int, evidence: EdgeEvidence
    ) -> bool:
        """Add cause -> effect; returns False if it would create a cycle.

        When the edge already exists, the higher-confidence evidence
        is kept.
        """
        if cause_id not in self._events:
            raise HbgError(f"unknown cause vertex {cause_id}")
        if effect_id not in self._events:
            raise HbgError(f"unknown effect vertex {effect_id}")
        if cause_id == effect_id:
            return False
        current = self._out[cause_id].get(effect_id)
        if current is not None:
            if evidence.confidence > current.confidence:
                self._out[cause_id][effect_id] = evidence
                self._in[effect_id][cause_id] = evidence
            return True
        if self._reaches(effect_id, cause_id):
            return False
        self._out[cause_id][effect_id] = evidence
        self._in[effect_id][cause_id] = evidence
        self._edge_total += 1
        return True

    def clear_in_edges(self, effect_id: int) -> int:
        """Remove every in-edge of ``effect_id``; returns how many.

        The streaming re-link path replaces a consequent's inferred
        in-edges wholesale: when a late-arriving event changes which
        candidate a rule picks, the previously chosen edge must not
        linger next to the new one, or the streaming graph drifts from
        the batch build's.
        """
        incoming = self._in.pop(effect_id, None)
        if not incoming:
            return 0
        for cause in incoming:
            del self._out[cause][effect_id]
        self._edge_total -= len(incoming)
        return len(incoming)

    def _reaches(self, start: int, target: int) -> bool:
        if start == target:
            return True
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in self._out.get(node, ()):
                if child == target:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event_id: int) -> bool:
        return event_id in self._events

    def event(self, event_id: int) -> IOEvent:
        try:
            return self._events[event_id]
        except KeyError:
            raise HbgError(f"no event {event_id} in HBG") from None

    def events(self) -> List[IOEvent]:
        return [self._events[i] for i in sorted(self._events)]

    def edge_count(self) -> int:
        return self._edge_total

    def edges(self) -> Iterator[Edge]:
        for cause in sorted(self._out):
            for effect in sorted(self._out[cause]):
                yield Edge(cause, effect, self._out[cause][effect])

    def edge_set(self) -> Set[Tuple[int, int]]:
        return {(e.cause, e.effect) for e in self.edges()}

    def parents(
        self, event_id: int, min_confidence: float = 0.0
    ) -> List[Tuple[IOEvent, EdgeEvidence]]:
        """Direct causes of ``event_id`` above the confidence bar."""
        result = []
        for cause, evidence in sorted(self._in.get(event_id, {}).items()):
            if evidence.confidence >= min_confidence:
                result.append((self._events[cause], evidence))
        return result

    def children(
        self, event_id: int, min_confidence: float = 0.0
    ) -> List[Tuple[IOEvent, EdgeEvidence]]:
        result = []
        for effect, evidence in sorted(self._out.get(event_id, {}).items()):
            if evidence.confidence >= min_confidence:
                result.append((self._events[effect], evidence))
        return result

    def ancestors(
        self, event_id: int, min_confidence: float = 0.0
    ) -> Set[int]:
        """All transitive causes of ``event_id``."""
        self.event(event_id)
        seen: Set[int] = set()
        stack = [event_id]
        while stack:
            node = stack.pop()
            for cause, evidence in self._in.get(node, {}).items():
                if evidence.confidence < min_confidence:
                    continue
                if cause not in seen:
                    seen.add(cause)
                    stack.append(cause)
        return seen

    def descendants(
        self, event_id: int, min_confidence: float = 0.0
    ) -> Set[int]:
        self.event(event_id)
        seen: Set[int] = set()
        stack = [event_id]
        while stack:
            node = stack.pop()
            for effect, evidence in self._out.get(node, {}).items():
                if evidence.confidence < min_confidence:
                    continue
                if effect not in seen:
                    seen.add(effect)
                    stack.append(effect)
        return seen

    def root_causes(
        self, event_id: int, min_confidence: float = 0.0
    ) -> List[IOEvent]:
        """§6: "Any leaf nodes we encounter represent the root cause(s)."

        Walks ancestors of ``event_id``; returns those with no parents
        (above the confidence bar).  If the event itself has no
        parents it is its own root cause.
        """
        ancestors = self.ancestors(event_id, min_confidence)
        if not ancestors:
            return [self.event(event_id)]
        leaves = [
            self._events[a]
            for a in sorted(ancestors)
            if not any(
                ev.confidence >= min_confidence
                for ev in self._in.get(a, {}).values()
            )
        ]
        return leaves

    def causal_chain(
        self, from_id: int, to_id: int, min_confidence: float = 0.0
    ) -> Optional[List[IOEvent]]:
        """One shortest cause→effect path from ``from_id`` to ``to_id``."""
        self.event(from_id)
        self.event(to_id)
        if from_id == to_id:
            return [self.event(from_id)]
        parent_of: Dict[int, int] = {}
        queue = deque([from_id])
        seen = {from_id}
        while queue:
            node = queue.popleft()
            for effect, evidence in sorted(self._out.get(node, {}).items()):
                if evidence.confidence < min_confidence or effect in seen:
                    continue
                parent_of[effect] = node
                if effect == to_id:
                    path = [to_id]
                    while path[-1] != from_id:
                        path.append(parent_of[path[-1]])
                    return [self._events[i] for i in reversed(path)]
                seen.add(effect)
                queue.append(effect)
        return None

    def topological_order(self) -> List[IOEvent]:
        """Kahn's algorithm; ties broken by event id for determinism."""
        in_degree = {i: len(self._in.get(i, {})) for i in self._events}
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[IOEvent] = []
        ready_set = deque(ready)
        while ready_set:
            node = ready_set.popleft()
            order.append(self._events[node])
            newly_ready = []
            for effect in self._out.get(node, {}):
                in_degree[effect] -= 1
                if in_degree[effect] == 0:
                    newly_ready.append(effect)
            for effect in sorted(newly_ready):
                ready_set.append(effect)
        if len(order) != len(self._events):
            raise HbgError("cycle detected in HBG (should be impossible)")
        return order

    def events_of_router(self, router: str) -> List[IOEvent]:
        return [e for e in self.events() if e.router == router]

    def subgraph_for_router(self, router: str) -> "HappensBeforeGraph":
        """This router's happens-before subgraph (§5, distributed mode):
        the router's own events plus edges between them."""
        sub = HappensBeforeGraph()
        ids = set()
        for event in self.events_of_router(router):
            sub.add_event(event)
            ids.add(event.event_id)
        for edge in self.edges():
            if edge.cause in ids and edge.effect in ids:
                sub.add_edge(edge.cause, edge.effect, edge.evidence)
        return sub

    def merge(self, other: "HappensBeforeGraph") -> None:
        """Union ``other`` into this graph."""
        for event in other.events():
            self.add_event(event)
        for edge in other.edges():
            self.add_edge(edge.cause, edge.effect, edge.evidence)

    # -- export -------------------------------------------------------------------

    def to_dot(self, min_confidence: float = 0.0) -> str:
        """Graphviz DOT text (for the Fig. 4 / Fig. 5 style renders)."""
        lines = ["digraph hbg {", "  rankdir=TB;", "  node [shape=box];"]
        for event in self.events():
            label = event.describe().replace('"', "'")
            lines.append(
                f'  e{event.event_id} [label="{label}\\n@{event.timestamp:.4f}s"];'
            )
        for edge in self.edges():
            if edge.evidence.confidence < min_confidence:
                continue
            style = "solid" if edge.evidence.technique == "rule" else "dashed"
            lines.append(
                f"  e{edge.cause} -> e{edge.effect} "
                f'[style={style}, label="{edge.evidence.confidence:.2f}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_records(self) -> Dict[str, list]:
        """Serialise the graph (events + edges) to plain dicts."""
        return {
            "events": [event.to_record() for event in self.events()],
            "edges": [
                {
                    "cause": edge.cause,
                    "effect": edge.effect,
                    "technique": edge.evidence.technique,
                    "rule": edge.evidence.rule,
                    "confidence": edge.evidence.confidence,
                }
                for edge in self.edges()
            ],
        }

    @classmethod
    def from_records(cls, records: Dict[str, list]) -> "HappensBeforeGraph":
        """Inverse of :meth:`to_records` (event ids preserved)."""
        graph = cls()
        for record in records.get("events", ()):
            graph.add_event(IOEvent.from_record(record))
        for record in records.get("edges", ()):
            graph.add_edge(
                int(record["cause"]),
                int(record["effect"]),
                EdgeEvidence(
                    technique=record.get("technique", "rule"),
                    rule=record.get("rule", ""),
                    confidence=float(record.get("confidence", 1.0)),
                ),
            )
        return graph

    def prune_before(self, cutoff: float) -> int:
        """Drop events older than ``cutoff`` (and their edges).

        Long-running deployments cannot keep the HBG forever; §5's
        consistency walk and §6's provenance only ever need the
        suffix covering in-flight convergence plus the operator's
        investigation horizon.  Returns how many events were dropped.
        """
        doomed = [
            event_id
            for event_id, event in self._events.items()
            if event.timestamp < cutoff
        ]
        for event_id in doomed:
            for effect in list(self._out.get(event_id, ())):
                del self._in[effect][event_id]
                self._edge_total -= 1
            for cause in list(self._in.get(event_id, ())):
                del self._out[cause][event_id]
                self._edge_total -= 1
            self._out.pop(event_id, None)
            self._in.pop(event_id, None)
            del self._events[event_id]
        return len(doomed)

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` for ad-hoc analysis."""
        import networkx as nx

        graph = nx.DiGraph()
        for event in self.events():
            graph.add_node(event.event_id, event=event)
        for edge in self.edges():
            graph.add_edge(
                edge.cause,
                edge.effect,
                technique=edge.evidence.technique,
                rule=edge.evidence.rule,
                confidence=edge.evidence.confidence,
            )
        return graph
