"""Distributed HBG construction and analysis (§5, final paragraph).

    "Each router can store its own happens-before subgraph containing
    that router's control plane I/Os.  Partial paths through the HBG
    can be passed to neighboring routers that can expand the paths
    based on their happens-before subgraph."

This is a real distributed construction engine, not a facade over the
central build:

* :class:`RouterSubgraph` maintains an incremental
  :class:`~repro.hbr.index.EventIndex` over *only its own* events —
  every :meth:`~RouterSubgraph.ingest` is an O(sqrt N) indexed insert
  (the streaming shape of :mod:`repro.hbr.inference`), so per-router
  work scales with per-router traffic, not with network size.
* Cross-router candidates come from **boundary summaries**: each
  router publishes, per neighbor, the compact bucket of its
  ROUTE_SEND/ROUTE_RECEIVE events addressed to that neighbor (peer,
  protocol, prefix, action, timestamp window) — never the full event
  stream.  Which kinds ship at all is derived from the engine's rule
  plans (:func:`boundary_kinds`); the default rule set needs sends
  only.
* Equivalence to the central build is an argument, not a hope.  Every
  rule plan is either ``same``-router — answerable from the local
  index alone, whose ``(router, kind[, prefix])`` buckets are
  *identical* to the central index's — or ``peer`` — answerable from
  the neighbor's boundary bucket, because the engine filters
  candidates through ``rule.pair_matches`` whose ``peer_symmetric``
  relation keeps exactly the antecedents with ``peer ==
  cons.router``, which is precisely what the summary contains.  The
  post-filter candidate lists (the only input to edge choice *and*
  the ambiguity discount) are therefore identical, and replaying the
  merged edge records in ``(cons_ts, cons_id, seq)`` order reproduces
  the serial build's exact ``add_edge`` order — the byte-identity
  argument of :mod:`repro.hbr.sharded`.  Engine configurations that
  break the argument (naive/pattern techniques, ``legacy_scan``,
  custom rules with no router relation or with peer-side antecedents
  beyond send/receive) are **refused** with
  :exc:`DistributionUnsupported` instead of silently falling back to
  a central rebuild.

:meth:`DistributedHbg.build_all` optionally forks a worker pool over
routers (``workers=N``) exactly like the sharded build; the merge is
deterministic either way.  :meth:`DistributedHbg.merged_graph` is a
true merge of the per-router edge records — it never calls the global
``build_graph`` over the full event list.  The boundary-traffic
meters (:class:`BoundaryExchangeStats`, ``distributed.*`` obs
metrics) let the C-SCALE/C-DIST benchmarks compare message cost
against shipping every event to a central collector.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import EdgeEvidence, HappensBeforeGraph
from repro.hbr.index import EventIndex, MAX_ID, RulePlan
from repro.hbr.inference import InferenceEngine, _admissible
from repro.hbr.sharded import (
    EdgeRecord,
    ShardTimings,
    _fork_context,
    shard_routers,
)

#: Event kinds that can appear in a boundary summary at all: the
#: send/receive pairs that cross router boundaries.  A peer-plan rule
#: whose antecedent needs anything else (a neighbor's RIB/FIB/config
#: events) cannot be answered from summaries and is refused.
BOUNDARY_KINDS = frozenset({IOKind.ROUTE_SEND, IOKind.ROUTE_RECEIVE})

#: Unbounded lower time bound for full-index iteration.
_TIME_FLOOR = float("-inf")


class DistributionUnsupported(ValueError):
    """The engine's config or rules cannot be built distributedly.

    Raised instead of silently centralizing: a caller that asked for
    the distributed path must know it did not get it.
    """


def distribution_obstacles(engine: InferenceEngine) -> List[str]:
    """Why ``engine`` cannot run distributed (empty list = it can).

    The checks mirror the equivalence argument in the module
    docstring: every candidate lookup must be answerable from a
    router's local index or a neighbor's boundary summary.
    """
    config = engine.config
    obstacles: List[str] = []
    if config.naive_prefix_timestamp:
        obstacles.append(
            "naive prefix/timestamp linking scans the global stream"
        )
    if config.use_patterns:
        obstacles.append("pattern matching scans the global stream")
    if config.legacy_scan:
        obstacles.append(
            "legacy_scan bypasses the per-router indices the "
            "subgraphs maintain"
        )
    for rule, plan in zip(engine.rules, engine._plans):
        if plan.router_from == "any":
            obstacles.append(
                f"rule {rule.name!r} has no same-router/peer relation "
                "(its antecedents need the global index)"
            )
        elif plan.router_from == "peer":
            foreign = [
                kind.value
                for kind in plan.kinds
                if kind not in BOUNDARY_KINDS
            ]
            if foreign:
                obstacles.append(
                    f"rule {rule.name!r} needs neighbor "
                    f"{'/'.join(foreign)} events, which boundary "
                    "summaries do not carry"
                )
    return obstacles


def supports_distribution(engine: InferenceEngine) -> bool:
    return not distribution_obstacles(engine)


def check_distribution(engine: InferenceEngine) -> None:
    obstacles = distribution_obstacles(engine)
    if obstacles:
        raise DistributionUnsupported(
            "engine cannot build distributedly: " + "; ".join(obstacles)
        )


def boundary_kinds(engine: InferenceEngine) -> Tuple[IOKind, ...]:
    """The event kinds boundary summaries must carry for ``engine``.

    Derived from the rule plans: only peer-plan antecedent kinds ship.
    With the default rule set that is ``(ROUTE_SEND,)`` — receives
    never antecede a cross-router rule, so they stay home.
    """
    needed: Set[IOKind] = set()
    for plan in engine._plans:
        if plan.router_from == "peer":
            needed.update(k for k in plan.kinds if k in BOUNDARY_KINDS)
    return tuple(sorted(needed, key=lambda kind: kind.value))


def _wire_bytes(event: IOEvent) -> int:
    """Deterministic estimate of one event's on-the-wire size.

    A fixed header (event id, timestamp, kind tag, field lengths)
    plus the variable-length fields.  Used for the boundary-traffic
    vs central-collector cost model; deterministic by construction so
    benchmark columns replay identically.
    """
    total = 26
    for text in (
        event.router,
        event.peer,
        event.protocol,
        str(event.prefix) if event.prefix is not None else None,
        event.action.value if event.action is not None else None,
    ):
        if text:
            total += len(text)
    for key, value in event.attrs:
        total += len(str(key)) + len(str(value))
    return total


@dataclass(frozen=True)
class BoundarySummary:
    """The compact per-neighbor bucket one router publishes.

    ``events`` is sorted by ``(timestamp, event_id)`` and contains
    only this router's boundary-kind events addressed to ``neighbor``
    — the keys (peer, protocol, prefix, action, timestamp) the
    receiving side needs to resolve cross-router send→receive edges.
    """

    origin: str
    neighbor: str
    events: Tuple[IOEvent, ...]

    def wire_bytes(self) -> int:
        return sum(_wire_bytes(event) for event in self.events)


@dataclass(frozen=True)
class BoundaryExchangeStats:
    """Traffic meter for one summary-exchange round."""

    messages: int
    events: int
    bytes: int


@dataclass(frozen=True)
class DistributedBuildStats:
    """What one :meth:`DistributedHbg.build_all` cost."""

    routers: int
    events: int
    edges: int
    workers: int
    boundary_messages: int
    boundary_events: int
    boundary_bytes: int
    #: Cost of the alternative: shipping every captured event to a
    #: central collector (same wire-size model as the summaries).
    central_bytes: int


@dataclass(frozen=True)
class PartialPath:
    """A (reversed) causal path being extended across routers.

    ``event_ids`` runs effect→cause: element 0 is the violating event
    the trace started from, the last element is the current frontier.
    """

    event_ids: Tuple[int, ...]

    @property
    def frontier(self) -> int:
        return self.event_ids[-1]

    def extended(self, event_id: int) -> "PartialPath":
        return PartialPath(self.event_ids + (event_id,))


class _DistributedSource:
    """Candidate source over a router's local index + boundary index.

    ``same``-plan lookups read the local index (bucket contents are
    identical to the central index's — buckets are keyed by the
    consequent's own router).  ``peer``-plan lookups read the boundary
    index built from neighbor summaries; the engine's ``pair_matches``
    post-filter makes the resulting candidate lists identical to the
    central build's (see module docstring).  Global-window lookups
    (naive/pattern techniques) are impossible here by design —
    :func:`check_distribution` refuses such engines up front.
    """

    __slots__ = ("local", "boundary", "skew")

    def __init__(self, local: EventIndex, boundary: EventIndex, skew: float):
        self.local = local
        self.boundary = boundary
        self.skew = skew

    def rule_candidates(
        self, cons: IOEvent, window: float, plan: "RulePlan"
    ) -> List[IOEvent]:
        lo = (cons.timestamp - window, 0)
        hi = (cons.timestamp + self.skew, MAX_ID)
        if plan.router_from == "same":
            index = self.local
        elif plan.router_from == "peer":
            index = self.boundary
        else:  # pragma: no cover - refused by check_distribution
            raise DistributionUnsupported(
                "rule without a router relation reached the "
                "distributed source"
            )
        return _admissible(cons, index.candidates(plan, cons, lo, hi))

    def window_candidates(
        self, cons: IOEvent, window: float
    ) -> List[IOEvent]:  # pragma: no cover - refused by check_distribution
        raise DistributionUnsupported(
            "naive/pattern candidate scans need the global stream"
        )

    def track(self) -> "_DistributedSource":
        """No ledger registration: subgraph indices are owned (and
        sized) by their subgraphs, and this source is also built
        inside forked workers (CONC001)."""
        return self


class RouterSubgraph:
    """One router's share of the HBG.

    Ingest is streaming: each event lands in the local
    :class:`EventIndex` (O(sqrt N) insert, same bucket layout the
    central build uses), the per-neighbor outbox, and — for sends —
    the bisected ``find_matching_send`` buckets.  Nothing here ever
    sees another router's full event stream; cross-router inference
    reads only the boundary summaries neighbors published.
    """

    def __init__(self, router: str, engine: Optional[InferenceEngine] = None):
        self.router = router
        self.engine = engine or InferenceEngine()
        self._events: List[IOEvent] = []
        #: Local events, incrementally indexed (never remote events —
        #: those live in the boundary index so local bucket contents
        #: stay identical to the central index's).
        self._local = EventIndex()
        #: neighbor -> boundary-kind events addressed to it.
        self._outbox: Dict[str, List[IOEvent]] = {}
        #: origin -> the latest summary that neighbor published to us.
        self._inbox: Dict[str, BoundarySummary] = {}
        self._boundary: Optional[EventIndex] = None
        #: (peer, protocol, prefix, action) -> [(ts, id, event)] for
        #: the bisected send lookup; buckets sort lazily on first use.
        self._send_buckets: Dict[
            Tuple[str, Optional[str], object, object],
            List[Tuple[float, int, IOEvent]],
        ] = {}
        self._dirty_sends: Set[
            Tuple[str, Optional[str], object, object]
        ] = set()
        self.graph = HappensBeforeGraph()

    def ingest(self, event: IOEvent) -> None:
        if event.router != self.router:
            raise ValueError(
                f"event of {event.router} offered to subgraph of {self.router}"
            )
        self._events.append(event)
        self._local.add(event)
        if event.kind in BOUNDARY_KINDS and event.peer:
            self._outbox.setdefault(event.peer, []).append(event)
            if event.kind is IOKind.ROUTE_SEND:
                key = (event.peer, event.protocol, event.prefix, event.action)
                self._send_buckets.setdefault(key, []).append(
                    (event.timestamp, event.event_id, event)
                )
                self._dirty_sends.add(key)

    def events(self) -> List[IOEvent]:
        return list(self._events)

    def event_count(self) -> int:
        return len(self._events)

    def ordered_events(self) -> Iterable[IOEvent]:
        """Local events in ``(timestamp, event_id)`` order."""
        return self._local.window((_TIME_FLOOR, 0), (float("inf"), MAX_ID))

    # -- boundary-summary exchange ----------------------------------------

    def neighbors(self) -> List[str]:
        """Routers this one exchanged route messages with."""
        return sorted(self._outbox)

    def summary_for(
        self, neighbor: str, kinds: Sequence[IOKind]
    ) -> BoundarySummary:
        """The boundary bucket this router publishes to ``neighbor``."""
        wanted = frozenset(kinds)
        selected = sorted(
            (
                event
                for event in self._outbox.get(neighbor, ())
                if event.kind in wanted
            ),
            key=lambda e: (e.timestamp, e.event_id),
        )
        return BoundarySummary(
            origin=self.router, neighbor=neighbor, events=tuple(selected)
        )

    def receive_summary(self, summary: BoundarySummary) -> None:
        """Accept a neighbor's boundary summary (replacing any older
        one from the same origin)."""
        self._inbox[summary.origin] = summary
        self._boundary = None

    def _boundary_index(self) -> EventIndex:
        if self._boundary is None:
            index = EventIndex()
            for origin in sorted(self._inbox):
                for event in self._inbox[origin].events:
                    index.add(event)
            self._boundary = index
        return self._boundary

    # -- inference ---------------------------------------------------------

    def infer_records(self) -> Tuple[List[EdgeRecord], ShardTimings]:
        """Edge records for this router's consequents.

        Pure per-consequent inference over the local index plus the
        boundary summaries received so far; identical to the central
        build's records for these consequents (module docstring).
        Safe inside forked workers: per-rule timings aggregate into
        the returned dict, never into the process-global registry
        (CONC001).
        """
        engine = self.engine
        source = _DistributedSource(
            self._local,
            self._boundary_index(),
            engine.config.clock_skew_tolerance,
        )
        records: List[EdgeRecord] = []
        tallies: Dict[str, List[float]] = {}
        timing_sink = None
        if obs.get_registry().enabled:

            def timing_sink(rule_name: str, seconds: float) -> None:
                tally = tallies.get(rule_name)
                if tally is None:
                    tallies[rule_name] = [1, seconds]
                else:
                    tally[0] += 1
                    tally[1] += seconds

        for cons in self.ordered_events():
            for seq, (ante, evidence) in enumerate(
                engine._infer_edges(cons, source, timing_sink)
            ):
                records.append(
                    (
                        cons.timestamp,
                        cons.event_id,
                        seq,
                        ante.event_id,
                        evidence.technique,
                        evidence.rule,
                        evidence.confidence,
                    )
                )
        return records, {
            rule: (int(count), seconds)
            for rule, (count, seconds) in tallies.items()
        }

    def build(self) -> HappensBeforeGraph:
        """(Re)infer this router's *local* graph: its own events plus
        the intra-router edges among them.

        Cross-router edges (whose cause lives on a neighbor) are not
        materialized here — they belong to the merged graph and to the
        partial-path protocol.  Standalone (before any summary
        exchange) this reproduces exactly what inference over the
        local events alone would produce.
        """
        check_distribution(self.engine)
        records, _timings = self.infer_records()
        records.sort(key=lambda r: (r[0], r[1], r[2]))
        self._populate_graph(records)
        return self.graph

    def _populate_graph(self, records: Sequence[EdgeRecord]) -> None:
        """Rebuild ``self.graph`` from sorted records (intra edges only)."""
        graph = HappensBeforeGraph()
        for event in self.ordered_events():
            graph.add_event(event)
        evidence_cache: dict = {}
        for _ts, cons_id, _seq, cause_id, technique, rule, conf in records:
            if cause_id not in graph or cons_id not in graph:
                continue
            evidence = evidence_cache.get((technique, rule, conf))
            if evidence is None:
                evidence = EdgeEvidence(
                    technique=technique, rule=rule, confidence=conf
                )
                evidence_cache[(technique, rule, conf)] = evidence
            graph.add_edge(cause_id, cons_id, evidence)
        self.graph = graph

    def local_parents(self, event_id: int) -> List[IOEvent]:
        return [event for event, _ in self.graph.parents(event_id)]

    def find_matching_send(self, receive: IOEvent) -> Optional[IOEvent]:
        """Our ROUTE_SEND that a neighbor's ROUTE_RECEIVE matches.

        Used when a neighbor hands us a partial path whose frontier is
        a receive-from-us: the cross-router HBR [we send] → [they
        receive] is resolved against our local events.  A bisected
        lookup in the (peer, protocol, prefix, action) bucket: the
        latest send no later than the receive plus the clock-skew
        tolerance (lowest event id among timestamp ties).
        """
        key = (receive.router, receive.protocol, receive.prefix, receive.action)
        bucket = self._send_buckets.get(key)
        if not bucket:
            return None
        if key in self._dirty_sends:
            # Event ids are unique, so (ts, id) decides every
            # comparison before the IOEvent element is reached.
            bucket.sort()
            self._dirty_sends.discard(key)
        horizon = (
            receive.timestamp + self.engine.config.clock_skew_tolerance,
            MAX_ID,
        )
        position = bisect.bisect_right(bucket, horizon)
        if position == 0:
            return None
        latest_ts = bucket[position - 1][0]
        first = bisect.bisect_left(bucket, (latest_ts,))
        return bucket[first][2]


#: Stashed DistributedHbg for forked workers — set in the parent
#: immediately before the fork so children inherit the subgraphs
#: without pickling them per task.
_WORK: Optional["DistributedHbg"] = None


def _run_shard(routers: List[str]) -> Tuple[List[EdgeRecord], ShardTimings]:
    if _WORK is None:  # set by DistributedHbg.build_all before forking
        raise RuntimeError("_run_shard called outside build_all")
    return _WORK._infer_shard(routers)


class DistributedHbg:
    """A set of router subgraphs plus the exchange protocols.

    Two kinds of cross-router traffic, both metered:

    * **boundary summaries** at build time (compact per-neighbor
      send/receive buckets — the construction-side exchange);
    * **partial paths** at analysis time (the §5 path-expansion
      protocol, counted in :attr:`messages_exchanged`).
    """

    def __init__(self, engine: Optional[InferenceEngine] = None):
        self.engine = engine or InferenceEngine()
        self.subgraphs: Dict[str, RouterSubgraph] = {}
        #: Count of partial paths passed between routers (the cost
        #: metric for the distributed-vs-central comparison).
        self.messages_exchanged = 0
        #: O(1) owner-map lookups served (each replaces what used to
        #: be a scan over every subgraph).
        self.owner_lookups = 0
        #: event_id -> owning router, maintained on ingest.
        self._owner: Dict[int, str] = {}
        self._central_bytes = 0
        self._records: Optional[List[EdgeRecord]] = None
        self.last_build: Optional[DistributedBuildStats] = None

    # -- ingest ------------------------------------------------------------

    def ingest(self, event: IOEvent) -> None:
        subgraph = self.subgraphs.get(event.router)
        if subgraph is None:
            subgraph = RouterSubgraph(event.router, self.engine)
            self.subgraphs[event.router] = subgraph
        subgraph.ingest(event)
        self._owner[event.event_id] = event.router
        self._central_bytes += _wire_bytes(event)
        self._records = None

    def ingest_all(self, events: Iterable[IOEvent]) -> None:
        for event in events:
            self.ingest(event)

    def event_count(self) -> int:
        return len(self._owner)

    # -- construction ------------------------------------------------------

    def exchange_summaries(self) -> BoundaryExchangeStats:
        """One summary-exchange round: every router publishes its
        per-neighbor boundary buckets.  Idempotent (a newer summary
        replaces the origin's older one); empty buckets stay home."""
        kinds = boundary_kinds(self.engine)
        messages = events = bytes_total = 0
        for origin_name in sorted(self.subgraphs):
            origin = self.subgraphs[origin_name]
            for neighbor in origin.neighbors():
                target = self.subgraphs.get(neighbor)
                if target is None:
                    # External peer: it contributed no events, so the
                    # central build had nothing from it either.
                    continue
                summary = origin.summary_for(neighbor, kinds)
                if not summary.events:
                    continue
                target.receive_summary(summary)
                messages += 1
                events += len(summary.events)
                bytes_total += summary.wire_bytes()
        return BoundaryExchangeStats(
            messages=messages, events=events, bytes=bytes_total
        )

    def _infer_shard(
        self, routers: Sequence[str]
    ) -> Tuple[List[EdgeRecord], ShardTimings]:
        records: List[EdgeRecord] = []
        merged: Dict[str, List[float]] = {}
        for name in routers:
            shard_records, timings = self.subgraphs[name].infer_records()
            records.extend(shard_records)
            for rule, (count, seconds) in timings.items():
                tally = merged.get(rule)
                if tally is None:
                    merged[rule] = [count, seconds]
                else:
                    tally[0] += count
                    tally[1] += seconds
        return records, {
            rule: (int(count), seconds)
            for rule, (count, seconds) in merged.items()
        }

    def build_all(self, workers: Optional[int] = None) -> None:
        """Exchange boundary summaries, infer every router's edges
        (optionally with ``workers`` forked processes), and populate
        the per-router local graphs.

        Raises :exc:`DistributionUnsupported` for engines whose rules
        or config cannot be answered from local indices plus boundary
        summaries — never a silent central rebuild.
        """
        global _WORK
        check_distribution(self.engine)
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        exchange = self.exchange_summaries()
        names = sorted(self.subgraphs)
        shards = shard_routers(names, workers or 1)
        context = _fork_context() if len(shards) > 1 else None
        if context is None:
            results = [self._infer_shard(shard) for shard in shards]
        else:
            _WORK = self
            try:
                with context.Pool(processes=len(shards)) as pool:
                    results = pool.map(_run_shard, shards)
            finally:
                _WORK = None
        records: List[EdgeRecord] = []
        merged_timings: Dict[str, List[float]] = {}
        for shard_records, shard_timings in results:
            records.extend(shard_records)
            for rule, (count, seconds) in shard_timings.items():
                tally = merged_timings.get(rule)
                if tally is None:
                    merged_timings[rule] = [count, seconds]
                else:
                    tally[0] += count
                    tally[1] += seconds
        # Replay the serial build's exact insertion order (the
        # byte-identity argument of repro.hbr.sharded).
        records.sort(key=lambda r: (r[0], r[1], r[2]))
        self._records = records
        for name in names:
            subgraph = self.subgraphs[name]
            subgraph._populate_graph(
                [r for r in records if self._owner[r[1]] == name]
            )
        self.last_build = DistributedBuildStats(
            routers=len(names),
            events=len(self._owner),
            edges=len(records),
            workers=len(shards),
            boundary_messages=exchange.messages,
            boundary_events=exchange.events,
            boundary_bytes=exchange.bytes,
            central_bytes=self._central_bytes,
        )
        recorder = obs.get_recorder()
        if recorder.enabled:
            # Workers are throwaway forks: replay their HBR_EDGE trace
            # records in the parent, as the sharded build does.
            for cons_ts, cons_id, _seq, cause_id, technique, rule, conf in (
                records
            ):
                recorder.record(
                    obs.TraceKind.HBR_EDGE,
                    at=cons_ts,
                    router=self._owner[cons_id],
                    event_id=cons_id,
                    cause=cause_id,
                    rule=rule,
                    technique=technique,
                    confidence=conf,
                )
        if registry.enabled:
            registry.counter("distributed.builds_total").inc()
            registry.gauge("distributed.router_count").set(len(names))
            registry.histogram("distributed.build_seconds").observe(
                watch.elapsed()
            )
            registry.counter("distributed.boundary_messages_total").inc(
                exchange.messages
            )
            registry.counter("distributed.boundary_events_total").inc(
                exchange.events
            )
            registry.counter("distributed.boundary_bytes_total").inc(
                exchange.bytes
            )
            registry.counter("distributed.central_baseline_bytes_total").inc(
                self._central_bytes
            )
            # Workers are throwaway forks: replay their per-rule
            # timing aggregates and per-edge counters in the parent,
            # exactly as the sharded build does.
            for technique_rule, count in _edge_tallies(records).items():
                registry.counter(
                    "inference.edges_by_technique",
                    technique=technique_rule,
                ).inc(count)
            if records:
                registry.counter("inference.hbg_edges_inferred").inc(
                    len(records)
                )
            for rule in sorted(merged_timings):
                count, seconds = merged_timings[rule]
                registry.counter(
                    "inference.rule_invocations_total", rule=rule
                ).inc(count)
                registry.counter(
                    "inference.rule_seconds_total", rule=rule
                ).inc(seconds)

    def _ensure_built(self) -> None:
        if self._records is None:
            self.build_all()

    # -- lookups -----------------------------------------------------------

    def _find_event(self, event_id: int) -> Tuple[str, IOEvent]:
        """O(1) owner-map lookup (was: a scan over every subgraph)."""
        self.owner_lookups += 1
        router = self._owner.get(event_id)
        if router is None:
            raise KeyError(f"event {event_id} not in any subgraph")
        return router, self.subgraphs[router].graph.event(event_id)

    # -- analysis ----------------------------------------------------------

    def trace_root_causes(self, event_id: int) -> List[IOEvent]:
        """Distributed provenance: expand partial paths to leaves.

        Mirrors §6's root-cause walk but without a global graph: each
        expansion step uses only one router's subgraph, and crossing
        to another router costs one exchanged message.
        """
        self._ensure_built()
        start_router, _ = self._find_event(event_id)
        registry = obs.get_registry()
        messages_before = self.messages_exchanged
        roots: Dict[int, IOEvent] = {}
        queue: deque = deque()
        queue.append((start_router, PartialPath((event_id,))))
        visited: Set[int] = set()
        while queue:
            router, path = queue.popleft()
            frontier_id = path.frontier
            if frontier_id in visited:
                continue
            visited.add(frontier_id)
            subgraph = self.subgraphs[router]
            frontier = subgraph.graph.event(frontier_id)
            parents = subgraph.local_parents(frontier_id)
            extended = False
            for parent in parents:
                extended = True
                queue.append((router, path.extended(parent.event_id)))
            if frontier.kind is IOKind.ROUTE_RECEIVE and frontier.peer:
                neighbor = self.subgraphs.get(frontier.peer)
                if neighbor is not None:
                    send = neighbor.find_matching_send(frontier)
                    if send is not None:
                        extended = True
                        self.messages_exchanged += 1
                        queue.append(
                            (frontier.peer, path.extended(send.event_id))
                        )
            if not extended:
                roots[frontier.event_id] = frontier
        if registry.enabled:
            registry.counter("distributed.partial_path_messages_total").inc(
                self.messages_exchanged - messages_before
            )
            registry.counter("distributed.owner_lookups_total").inc()
        return [roots[i] for i in sorted(roots)]

    def merged_graph(self) -> HappensBeforeGraph:
        """True merge of the per-router edge records.

        Byte-identical to the serial/indexed/sharded central builds
        (the determinism gate holds all four to the same edge dump).
        Never calls the global ``build_graph`` over the full event
        list — the per-router records *are* the graph.
        """
        self._ensure_built()
        registry = obs.get_registry()
        merged = HappensBeforeGraph()
        all_events: List[IOEvent] = []
        for name in sorted(self.subgraphs):
            all_events.extend(self.subgraphs[name].events())
        all_events.sort(key=lambda e: (e.timestamp, e.event_id))
        for event in all_events:
            merged.add_event(event)
        evidence_cache: dict = {}
        for _ts, cons_id, _seq, cause_id, technique, rule, conf in (
            self._records or ()
        ):
            evidence = evidence_cache.get((technique, rule, conf))
            if evidence is None:
                evidence = EdgeEvidence(
                    technique=technique, rule=rule, confidence=conf
                )
                evidence_cache[(technique, rule, conf)] = evidence
            merged.add_edge(cause_id, cons_id, evidence)
        if registry.enabled:
            registry.counter("distributed.merges_total").inc()
        return merged

    def routers(self) -> List[str]:
        return sorted(self.subgraphs)


def _edge_tallies(records: Sequence[EdgeRecord]) -> Dict[str, int]:
    """Per-technique edge counts for the parent-side obs replay."""
    tallies: Dict[str, int] = {}
    for record in records:
        technique = record[4]
        tallies[technique] = tallies.get(technique, 0) + 1
    return tallies
