"""Distributed HBG construction and analysis (§5, final paragraph).

    "Each router can store its own happens-before subgraph containing
    that router's control plane I/Os.  Partial paths through the HBG
    can be passed to neighboring routers that can expand the paths
    based on their happens-before subgraph."

:class:`RouterSubgraph` holds one router's I/Os and intra-router
edges; :class:`DistributedHbg` coordinates path expansion across
subgraphs by exchanging :class:`PartialPath` messages over the
cross-router (send→receive) edges.  The message counter lets the
C-DIST benchmark compare communication cost against shipping every
event to a central collector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import HappensBeforeGraph
from repro.hbr.inference import InferenceEngine


@dataclass(frozen=True)
class PartialPath:
    """A (reversed) causal path being extended across routers.

    ``event_ids`` runs effect→cause: element 0 is the violating event
    the trace started from, the last element is the current frontier.
    """

    event_ids: Tuple[int, ...]

    @property
    def frontier(self) -> int:
        return self.event_ids[-1]

    def extended(self, event_id: int) -> "PartialPath":
        return PartialPath(self.event_ids + (event_id,))


class RouterSubgraph:
    """One router's share of the HBG."""

    def __init__(self, router: str, engine: Optional[InferenceEngine] = None):
        self.router = router
        self.engine = engine or InferenceEngine()
        self._events: List[IOEvent] = []
        self.graph = HappensBeforeGraph()

    def ingest(self, event: IOEvent) -> None:
        if event.router != self.router:
            raise ValueError(
                f"event of {event.router} offered to subgraph of {self.router}"
            )
        self._events.append(event)

    def build(self) -> HappensBeforeGraph:
        """(Re)infer intra-router edges from this router's own events."""
        self.graph = self.engine.build_graph(self._events)
        return self.graph

    def events(self) -> List[IOEvent]:
        return list(self._events)

    def local_parents(self, event_id: int) -> List[IOEvent]:
        return [event for event, _ in self.graph.parents(event_id)]

    def find_matching_send(self, receive: IOEvent) -> Optional[IOEvent]:
        """Our ROUTE_SEND that a neighbor's ROUTE_RECEIVE matches.

        Used when a neighbor hands us a partial path whose frontier is
        a receive-from-us: the cross-router HBR [we send] → [they
        receive] is resolved against our local events.
        """
        best: Optional[IOEvent] = None
        for event in self._events:
            if event.kind is not IOKind.ROUTE_SEND:
                continue
            if event.peer != receive.router:
                continue
            if event.protocol != receive.protocol:
                continue
            if event.prefix != receive.prefix:
                continue
            if event.action != receive.action:
                continue
            if event.timestamp > receive.timestamp + \
                    self.engine.config.clock_skew_tolerance:
                continue
            if best is None or event.timestamp > best.timestamp:
                best = event
        return best


class DistributedHbg:
    """A set of router subgraphs plus the path-expansion protocol."""

    def __init__(self, engine: Optional[InferenceEngine] = None):
        self.engine = engine or InferenceEngine()
        self.subgraphs: Dict[str, RouterSubgraph] = {}
        #: Count of partial paths passed between routers (the cost
        #: metric for the distributed-vs-central comparison).
        self.messages_exchanged = 0

    def ingest(self, event: IOEvent) -> None:
        subgraph = self.subgraphs.get(event.router)
        if subgraph is None:
            subgraph = RouterSubgraph(event.router, self.engine)
            self.subgraphs[event.router] = subgraph
        subgraph.ingest(event)

    def ingest_all(self, events: Iterable[IOEvent]) -> None:
        for event in events:
            self.ingest(event)

    def build_all(self) -> None:
        for subgraph in self.subgraphs.values():
            subgraph.build()

    def _find_event(self, event_id: int) -> Tuple[str, IOEvent]:
        for router, subgraph in self.subgraphs.items():
            if event_id in subgraph.graph:
                return router, subgraph.graph.event(event_id)
        raise KeyError(f"event {event_id} not in any subgraph")

    def trace_root_causes(self, event_id: int) -> List[IOEvent]:
        """Distributed provenance: expand partial paths to leaves.

        Mirrors §6's root-cause walk but without a global graph: each
        expansion step uses only one router's subgraph, and crossing
        to another router costs one exchanged message.
        """
        start_router, _ = self._find_event(event_id)
        roots: Dict[int, IOEvent] = {}
        queue: deque = deque()
        queue.append((start_router, PartialPath((event_id,))))
        visited: Set[int] = set()
        while queue:
            router, path = queue.popleft()
            frontier_id = path.frontier
            if frontier_id in visited:
                continue
            visited.add(frontier_id)
            subgraph = self.subgraphs[router]
            frontier = subgraph.graph.event(frontier_id)
            parents = subgraph.local_parents(frontier_id)
            extended = False
            for parent in parents:
                extended = True
                queue.append((router, path.extended(parent.event_id)))
            if frontier.kind is IOKind.ROUTE_RECEIVE and frontier.peer:
                neighbor = self.subgraphs.get(frontier.peer)
                if neighbor is not None:
                    send = neighbor.find_matching_send(frontier)
                    if send is not None:
                        extended = True
                        self.messages_exchanged += 1
                        queue.append(
                            (frontier.peer, path.extended(send.event_id))
                        )
            if not extended:
                roots[frontier.event_id] = frontier
        return [roots[i] for i in sorted(roots)]

    def merged_graph(self) -> HappensBeforeGraph:
        """Union of all subgraphs plus inferred cross-router edges.

        Equivalent to what the central collector would build; used to
        validate that distribution loses nothing.
        """
        merged = HappensBeforeGraph()
        all_events: List[IOEvent] = []
        for subgraph in self.subgraphs.values():
            all_events.extend(subgraph.events())
        return self.engine.build_graph(all_events)

    def routers(self) -> List[str]:
        return sorted(self.subgraphs)
