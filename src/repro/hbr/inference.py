"""HBR inference: the four techniques of §4.2 and their combination.

    "Prefixes ... can only be used to filter I/Os for possible HBRs."
    "Timestamps can be used to filter the HBRs considered/generated
    by other strategies, but timestamps cannot be used as the sole
    mechanism for identifying HBRs."
    "Rule matching ... requires understanding protocol standards."
    "Pattern matching ... has the benefit of being fully automated,
    but we risk missing an important HBR."
    "In practice, we expect a combination of these (and other)
    techniques will be necessary to obtain suitable accuracy."

:class:`InferenceEngine` implements all four:

* prefix filtering and timestamp ordering are *filters* applied to
  every candidate pair (exactly as the paper prescribes);
* rule matching consults the declarative rule set of
  :mod:`repro.hbr.rules`;
* pattern matching uses a :class:`PatternMiner` trained on a
  policy-compliant capture, attaching a statistical confidence to
  each inferred edge;
* a deliberately weak ``naive`` mode links every prefix/timestamp
  compatible pair — the strawman the paper's quotes above warn
  about, used as the ablation baseline in benchmark C-INF.

:func:`score_inference` computes precision/recall against the
simulator's ground-truth channel.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.ground_truth import GroundTruth
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import EdgeEvidence, HappensBeforeGraph
from repro.hbr.index import (
    EventIndex,
    MAX_ID,
    RulePlan,
    forward_plan_for_rule,
    plan_for_rule,
)
from repro.hbr.rules import HbrRule, default_rules


@dataclass
class InferenceConfig:
    """Knobs for the combined engine."""

    use_rules: bool = True
    use_patterns: bool = False
    #: Link every prefix/timestamp-compatible pair (ablation strawman).
    naive_prefix_timestamp: bool = False
    #: Allowed clock disagreement between routers (seconds).
    clock_skew_tolerance: float = 0.050
    #: Window for the naive mode (seconds).
    naive_window: float = 1.0
    #: Minimum mined-pattern confidence to emit an edge.
    pattern_confidence_threshold: float = 0.6
    #: Divide rule confidence by the number of equally plausible
    #: candidates (ambiguity makes an edge less trustworthy).
    ambiguity_discount: bool = True
    #: Link all candidates instead of only the most recent one.
    link_all_candidates: bool = False
    #: Use the original per-event window rescan instead of the
    #: inverted indices of :mod:`repro.hbr.index`.  Kept only as the
    #: reference implementation for differential testing (the
    #: ``hbg-indexed-equivalence`` oracle); the indexed path is the
    #: default and produces the identical graph.
    legacy_scan: bool = False
    #: Streaming only: after each observe, re-link every
    #: already-observed consequent whose candidate window contains the
    #: new event — not just those inside the skew horizon.  Required
    #: when events are fed in *arrival* order (per-router log lag can
    #: deliver a cause long after its effects were observed); with it,
    #: the streaming graph equals the batch build of the same event
    #: set after every observe.  Off by default because in-order feeds
    #: don't need it and the wider re-link window costs per-observe
    #: work proportional to recent-event density.
    full_relink: bool = False


# -- pattern mining ----------------------------------------------------------


Signature = Tuple[str, str, str]
Relation = Tuple[bool, bool, bool]  # (same_router, peer_symmetric, same_prefix)
PatternKey = Tuple[Signature, Signature, Relation]


def _signature(event: IOEvent) -> Signature:
    return (
        event.kind.value,
        event.protocol or "-",
        event.action.value if event.action else "-",
    )


def _relation(ante: IOEvent, cons: IOEvent) -> Relation:
    return (
        ante.router == cons.router,
        ante.peer == cons.router and cons.peer == ante.router,
        ante.prefix is not None and ante.prefix == cons.prefix,
    )


class PatternMiner:
    """§4.2 "Pattern matching": mine recurring I/O pair shapes.

    Training scans a (presumed policy-compliant) capture: for every
    event B it looks back ``window`` seconds at prefix-compatible
    events A and counts how often each (signature(A), signature(B),
    relation) shape occurs, normalised by the number of B-signature
    occurrences.  The resulting ratio is the statistical confidence
    the paper proposes attaching to inferred HBRs.
    """

    def __init__(self, window: float = 2.0):
        self.window = window
        self._pair_counts: Dict[PatternKey, int] = defaultdict(int)
        self._cons_totals: Dict[Signature, int] = defaultdict(int)
        self.trained_events = 0

    def train(self, events: Sequence[IOEvent]) -> None:
        ordered = sorted(events, key=lambda e: (e.timestamp, e.event_id))
        times = [e.timestamp for e in ordered]
        for index, cons in enumerate(ordered):
            self._cons_totals[_signature(cons)] += 1
            self.trained_events += 1
            start = bisect.bisect_left(times, cons.timestamp - self.window)
            seen_keys: Set[PatternKey] = set()
            for ante in ordered[start:index]:
                if not _prefix_compatible(ante, cons):
                    continue
                key = (_signature(ante), _signature(cons), _relation(ante, cons))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                self._pair_counts[key] += 1

    def confidence(self, ante: IOEvent, cons: IOEvent) -> float:
        key = (_signature(ante), _signature(cons), _relation(ante, cons))
        total = self._cons_totals.get(key[1], 0)
        if total == 0:
            return 0.0
        return self._pair_counts.get(key, 0) / total

    def known_patterns(self, min_confidence: float = 0.0) -> List[Tuple[PatternKey, float]]:
        result = []
        for key, count in self._pair_counts.items():
            total = self._cons_totals.get(key[1], 0)
            if total == 0:
                continue
            confidence = count / total
            if confidence >= min_confidence:
                result.append((key, confidence))
        result.sort(key=lambda item: (-item[1], item[0]))
        return result


def _prefix_compatible(a: IOEvent, b: IOEvent) -> bool:
    """The paper's prefix filter: same prefix, or either side has none
    (config/hardware/LSA events carry no prefix but can still relate)."""
    if a.prefix is None or b.prefix is None:
        return True
    return a.prefix == b.prefix


# -- candidate sources ------------------------------------------------------


def _admissible(
    cons: IOEvent, candidates: Iterable[IOEvent]
) -> List[IOEvent]:
    """The shared per-candidate filters both sources apply.

    Excludes the consequent itself and enforces the shared-clock
    constraint: same-router antecedents must not be later than the
    consequent (no skew allowance on one router's own clock).
    """
    result = []
    for ante in candidates:
        if ante.event_id == cons.event_id:
            continue
        if ante.router == cons.router and (
            ante.timestamp,
            ante.event_id,
        ) > (cons.timestamp, cons.event_id):
            continue
        result.append(ante)
    return result


class _ScanSource:
    """Legacy candidate lookup: rescan the ordered stream per rule.

    Kept as the reference implementation behind
    ``InferenceConfig.legacy_scan`` so the indexed path can be
    differentially tested against it forever.
    """

    __slots__ = ("ordered", "times", "skew")

    def __init__(
        self,
        ordered: Sequence[IOEvent],
        times: Sequence[float],
        skew: float,
    ):
        self.ordered = ordered
        self.times = times
        self.skew = skew

    def _window(self, cons: IOEvent, window: float) -> List[IOEvent]:
        """Events within [cons.t - window, cons.t + skew].

        The forward allowance implements the timestamp technique's
        skew tolerance: a cause on another (skewed) router may carry a
        slightly *later* logged timestamp than its effect.
        """
        start = bisect.bisect_left(self.times, cons.timestamp - window)
        end = bisect.bisect_right(self.times, cons.timestamp + self.skew)
        return _admissible(cons, self.ordered[start:end])

    def rule_candidates(
        self, cons: IOEvent, window: float, plan: "RulePlan"
    ) -> List[IOEvent]:
        return self._window(cons, window)

    def window_candidates(
        self, cons: IOEvent, window: float
    ) -> List[IOEvent]:
        return self._window(cons, window)

    def track(self) -> "_ScanSource":
        """No resources worth ledger-tracking here; returns ``self``."""
        return self


class _IndexSource:
    """Indexed candidate lookup over :class:`repro.hbr.index.EventIndex`.

    Rule lookups read only the (router, kind[, prefix]) bucket the
    rule's precomputed plan names; the naive/pattern modes fall back
    to the global time-ordered index.  Either way the answer comes
    back in the same (timestamp, event_id) order the legacy scan
    produced, so downstream tie-breaking is unchanged.
    """

    __slots__ = ("index", "skew")

    def __init__(self, index: EventIndex, skew: float):
        self.index = index
        self.skew = skew

    def rule_candidates(
        self, cons: IOEvent, window: float, plan: "RulePlan"
    ) -> List[IOEvent]:
        lo = (cons.timestamp - window, 0)
        hi = (cons.timestamp + self.skew, MAX_ID)
        return _admissible(
            cons, self.index.candidates(plan, cons, lo, hi)
        )

    def window_candidates(
        self, cons: IOEvent, window: float
    ) -> List[IOEvent]:
        lo = (cons.timestamp - window, 0)
        hi = (cons.timestamp + self.skew, MAX_ID)
        return _admissible(cons, self.index.window(lo, hi))

    def track(self) -> "_IndexSource":
        """Register the underlying index with the resource ledger.

        Deliberately *not* called from :meth:`InferenceEngine._batch_source`:
        that constructor path also runs inside forked shard workers,
        where a ledger registration dies with the worker (CONC001).
        Parent-process owners opt in after construction.
        """
        self.index.track()
        return self


# -- the combined engine ----------------------------------------------------------


class InferenceEngine:
    """Builds an HBG from an observable I/O stream."""

    def __init__(
        self,
        rules: Optional[Sequence[HbrRule]] = None,
        config: Optional[InferenceConfig] = None,
        miner: Optional[PatternMiner] = None,
    ):
        self.rules: Tuple[HbrRule, ...] = tuple(
            rules if rules is not None else default_rules()
        )
        self.config = config or InferenceConfig()
        self.miner = miner
        if self.config.use_patterns and self.miner is None:
            raise ValueError("use_patterns requires a trained PatternMiner")
        #: Per-rule index query plans, parallel to ``self.rules``.
        self._plans: Tuple[RulePlan, ...] = tuple(
            plan_for_rule(rule) for rule in self.rules
        )
        #: Rule dispatch buckets: consequent kind -> rule positions.
        #: A rule whose consequent declares no kinds fires for every
        #: kind.  Dispatching by kind skips only rules whose
        #: ``consequent.matches`` would have rejected the event anyway,
        #: so results (and per-rule obs timings) are unchanged.
        buckets: Dict[IOKind, List[int]] = {kind: [] for kind in IOKind}
        for position, rule in enumerate(self.rules):
            kinds = rule.consequent.kinds or tuple(IOKind)
            for kind in kinds:
                buckets[kind].append(position)
        self._rules_by_kind: Dict[IOKind, Tuple[int, ...]] = {
            kind: tuple(positions) for kind, positions in buckets.items()
        }

    # -- batch ------------------------------------------------------------

    def build_graph(
        self,
        events: Iterable[IOEvent],
        parallel: Optional[int] = None,
    ) -> HappensBeforeGraph:
        """Infer the full HBG for a finished capture.

        ``parallel`` opts in to the sharded build path of
        :mod:`repro.hbr.sharded`: the stream is partitioned by router,
        per-shard edge lists are produced by ``parallel`` worker
        processes, and the deterministic merge reproduces this
        method's serial result byte for byte.
        """
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        ordered = sorted(events, key=lambda e: (e.timestamp, e.event_id))
        if parallel is not None and parallel > 1:
            from repro.hbr.sharded import build_sharded

            graph = build_sharded(self, ordered, workers=parallel)
        else:
            graph = self._build_serial(ordered)
        if registry.enabled:
            registry.counter("inference.batch_builds_total").inc()
            registry.histogram("inference.build_graph_seconds").observe(
                watch.elapsed()
            )
            registry.histogram("inference.build_graph_events").observe(
                len(ordered)
            )
        return graph

    def _build_serial(
        self, ordered: Sequence[IOEvent]
    ) -> HappensBeforeGraph:
        graph = HappensBeforeGraph()
        for event in ordered:
            graph.add_event(event)
        # .track() here, not in _batch_source: the serial build runs in
        # the parent, so ledger registration of the index is safe.
        source = self._batch_source(ordered).track()
        for cons in ordered:
            for ante, evidence in self._edges_into(cons, source):
                graph.add_edge(ante.event_id, cons.event_id, evidence)
        return graph

    def _batch_source(self, ordered: Sequence[IOEvent]):
        """The candidate source for a finished, sorted capture.

        Free of ledger registration (and every other process-global
        mutation): forked shard workers call this too, so anything
        written to the obs singletons here would land in the doomed
        forked copy.  Parent-only owners call ``.track()`` on the
        returned source.
        """
        skew = self.config.clock_skew_tolerance
        if self.config.legacy_scan:
            times = [e.timestamp for e in ordered]
            return _ScanSource(ordered, times, skew)
        index = EventIndex()
        for event in ordered:
            index.add(event)
        return _IndexSource(index, skew)

    def _edges_into(
        self, cons: IOEvent, source
    ) -> List[Tuple[IOEvent, EdgeEvidence]]:
        registry = obs.get_registry()
        timing_sink = None
        if registry.enabled:
            # Serial/streaming path: per-rule wall time goes straight
            # into the registry histograms.  The sink indirection keeps
            # _infer_edges free of process-global mutation so the
            # forked shard workers (see repro.hbr.sharded) can reuse it
            # with an aggregating sink instead — a CONC001 requirement.
            def timing_sink(rule_name: str, seconds: float) -> None:
                registry.histogram(
                    "inference.rule_seconds", rule=rule_name
                ).observe(seconds)

        edges = self._infer_edges(cons, source, timing_sink)
        if edges and registry.enabled:
            registry.counter("inference.hbg_edges_inferred").inc(len(edges))
            for _ante, evidence in edges:
                registry.counter(
                    "inference.edges_by_technique",
                    technique=evidence.technique,
                ).inc()
        recorder = obs.get_recorder()
        if edges and recorder.enabled:
            for ante, evidence in edges:
                recorder.record(
                    obs.TraceKind.HBR_EDGE,
                    at=cons.timestamp,
                    router=cons.router,
                    event_id=cons.event_id,
                    cause=ante.event_id,
                    rule=evidence.rule,
                    technique=evidence.technique,
                    confidence=evidence.confidence,
                )
        return edges

    def _infer_edges(
        self, cons: IOEvent, source, timing_sink=None
    ) -> List[Tuple[IOEvent, EdgeEvidence]]:
        """Infer this consequent's in-edges (pure inference, no obs).

        ``timing_sink(rule_name, seconds)``, when provided, receives
        per-rule wall time.  This function must stay free of registry
        / recorder mutation: it runs inside forked shard workers,
        where any process-global emission would silently die with the
        worker (lint rule CONC001 checks exactly this).
        """
        edges: List[Tuple[IOEvent, EdgeEvidence]] = []
        linked: Set[int] = set()

        if self.config.naive_prefix_timestamp:
            for ante in source.window_candidates(
                cons, self.config.naive_window
            ):
                if not _prefix_compatible(ante, cons):
                    continue
                if ante.event_id in linked:
                    continue
                linked.add(ante.event_id)
                edges.append(
                    (ante, EdgeEvidence(technique="naive", confidence=0.1))
                )
            return edges

        if self.config.use_rules:
            # Per-rule wall time is only clocked when a sink asks for
            # it; the disabled path pays one None check per call.
            for position in self._rules_by_kind[cons.kind]:
                rule = self.rules[position]
                if not rule.consequent.matches(cons):
                    continue
                if timing_sink is not None:
                    rule_watch = obs.get_registry().stopwatch()
                try:
                    candidates = [
                        ante
                        for ante in source.rule_candidates(
                            cons, rule.window, self._plans[position]
                        )
                        if rule.pair_matches(ante, cons)
                    ]
                    if not candidates:
                        continue
                    if self.config.link_all_candidates or rule.pick == "all":
                        chosen = candidates
                    else:
                        chosen = [
                            max(
                                candidates,
                                key=lambda e: (e.timestamp, e.event_id),
                            )
                        ]
                    confidence = rule.base_confidence
                    if self.config.ambiguity_discount and len(candidates) > 1:
                        if len(chosen) > 1:
                            # Linking all of N candidates: each is 1/N likely.
                            confidence = max(0.05, confidence / len(candidates))
                        else:
                            # Picked the latest of several: mildly less sure.
                            confidence *= 0.9
                    for ante in chosen:
                        if ante.event_id in linked:
                            continue
                        linked.add(ante.event_id)
                        edges.append(
                            (
                                ante,
                                EdgeEvidence(
                                    technique="rule",
                                    rule=rule.name,
                                    confidence=confidence,
                                ),
                            )
                        )
                finally:
                    if timing_sink is not None:
                        timing_sink(rule.name, rule_watch.elapsed())

        if self.config.use_patterns and self.miner is not None:
            threshold = self.config.pattern_confidence_threshold
            best_per_key: Dict[PatternKey, Tuple[float, IOEvent, float]] = {}
            for ante in source.window_candidates(cons, self.miner.window):
                if ante.event_id in linked:
                    continue
                if not _prefix_compatible(ante, cons):
                    continue
                confidence = self.miner.confidence(ante, cons)
                if confidence < threshold:
                    continue
                key = (_signature(ante), _signature(cons), _relation(ante, cons))
                current = best_per_key.get(key)
                rank = (ante.timestamp, ante.event_id)
                if current is None or rank > (current[0], current[1].event_id):
                    best_per_key[key] = (ante.timestamp, ante, confidence)
            for _, ante, confidence in best_per_key.values():
                if ante.event_id in linked:
                    continue
                linked.add(ante.event_id)
                edges.append(
                    (
                        ante,
                        EdgeEvidence(
                            technique="pattern", confidence=confidence
                        ),
                    )
                )
        return edges

    # -- streaming ------------------------------------------------------------

    def relink_window(self) -> float:
        """Timestamp span *ahead* of a new event within which an
        already-observed consequent could have it as a candidate —
        the re-link horizon ``full_relink`` streaming must cover."""
        window = 0.0
        if self.config.use_rules and self.rules:
            window = max(window, max(rule.window for rule in self.rules))
        if self.config.naive_prefix_timestamp:
            window = max(window, self.config.naive_window)
        if self.config.use_patterns and self.miner is not None:
            window = max(window, self.miner.window)
        return window

    def streaming(self) -> "StreamingInference":
        return StreamingInference(self)


class StreamingInference:
    """Incremental HBG construction for the online pipeline.

    ``observe`` adds one event and links it backwards; it also checks
    whether the new event is the (skew-delayed) *cause* of recently
    observed events, re-running inference for consequents inside the
    skew horizon.

    The default path maintains an :class:`~repro.hbr.index.EventIndex`
    incrementally (O(sqrt N) insert, bucketed lookups); the
    ``legacy_scan`` config flag keeps the original O(N)-per-event
    sorted-list implementation for differential testing.  Both end-of-
    observe gauge updates are O(1): the graph tracks its own edge and
    vertex totals (see :meth:`HappensBeforeGraph.edge_count`), guarded
    by the overhead test in tests/test_hbr_inference.py.
    """

    def __init__(self, engine: InferenceEngine):
        self.engine = engine
        self.graph = HappensBeforeGraph()
        self._legacy = engine.config.legacy_scan
        skew = engine.config.clock_skew_tolerance
        #: With full_relink, re-link everything whose candidate window
        #: [cons.t - rule.window, cons.t + skew] can contain the new
        #: event: consequents up to one *per-event* horizon ahead (see
        #: :meth:`_ahead_horizon` — scoped to the rules the new event
        #: can antecede, so a FIB update does not pay the 60 s config
        #: window) and up to one skew behind (the new event may be a
        #: forward-skew cause).  Within the horizon, only consequents
        #: whose candidate sets the new event can actually enter are
        #: re-linked (:meth:`_could_affect`) — skipping the rest is
        #: sound because `_infer_edges` is a pure function of each
        #: rule's candidate list.
        self._full = engine.config.full_relink
        self._relink_ahead = (
            engine.relink_window() if self._full else skew
        )
        self._relink_behind = skew if self._full else 0.0
        #: Forward (antecedent → consequent-bucket) query plans,
        #: parallel to engine.rules; only the full_relink path uses
        #: them.
        self._fplans: Tuple[RulePlan, ...] = tuple(
            forward_plan_for_rule(rule) for rule in engine.rules
        )
        #: ``listener(event, relinked)`` callbacks, notified after each
        #: observe() — the delta feed the incremental verifier rides.
        self._listeners: List = []
        if self._legacy:
            self._ordered: List[IOEvent] = []
            self._times: List[float] = []
            self._source = _ScanSource(self._ordered, self._times, skew)
        else:
            # Streaming inference lives in the parent process, so the
            # index is ledger-tracked here.
            self._index = EventIndex().track()
            self._source = _IndexSource(self._index, skew)

    def _ahead_horizon(self, event: IOEvent) -> float:
        """How far ahead of ``event`` a consequent's candidate window
        can still reach back to it.

        Without ``full_relink`` this is the flat skew allowance.  With
        it, the bound is the widest window among the *rules whose
        antecedent pattern matches this event* (plus the naive/pattern
        windows when those techniques are on): an event no rule
        accepts as an antecedent cannot enter any later candidate
        list, so scanning the global ``relink_window()`` for it would
        only re-derive identical edges.
        """
        if not self._full:
            return self._relink_ahead
        config = self.engine.config
        window = 0.0
        if config.use_rules:
            for rule in self.engine.rules:
                if rule.window > window and rule.antecedent.matches(event):
                    window = rule.window
        if config.naive_prefix_timestamp:
            window = max(window, config.naive_window)
        if config.use_patterns and self.engine.miner is not None:
            window = max(window, self.engine.miner.window)
        return window

    def _could_affect(self, event: IOEvent, cons: IOEvent) -> bool:
        """Conservatively: can ``event`` enter ``cons``'s candidate
        lists?  False means re-linking ``cons`` is provably a no-op.

        Mirrors the admissibility + per-rule filters of
        ``_infer_edges``: a same-router antecedent later than the
        consequent is excluded everywhere (`_admissible`), and a rule
        only considers antecedents within its own window that
        ``pair_matches``.  Naive/pattern techniques are prefix-gated
        only (their confidence checks stay inside the re-link).
        """
        if cons.router == event.router and (
            (event.timestamp, event.event_id)
            > (cons.timestamp, cons.event_id)
        ):
            return False
        config = self.engine.config
        if config.naive_prefix_timestamp or (
            config.use_patterns and self.engine.miner is not None
        ):
            if _prefix_compatible(event, cons):
                return True
        if config.use_rules:
            delta = cons.timestamp - event.timestamp
            for position in self.engine._rules_by_kind[cons.kind]:
                rule = self.engine.rules[position]
                if delta <= rule.window and rule.pair_matches(event, cons):
                    return True
        return False

    def subscribe(self, listener) -> None:
        """Register ``listener(event, relinked)``.

        Called after every :meth:`observe` with the newly observed
        event and the tuple of *already-observed* events whose
        in-edges were re-inferred because of it.  Listeners run after
        the graph is updated, outside the observe metrics window.
        """
        self._listeners.append(listener)

    def observe(self, event: IOEvent) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        if self._legacy:
            relinked = self._observe_legacy(event)
        else:
            relinked = self._observe_indexed(event)
        if registry.enabled:
            registry.counter("inference.events_observed_total").inc()
            registry.histogram("inference.observe_seconds").observe(
                watch.elapsed()
            )
            registry.gauge("inference.hbg_events").set(len(self.graph))
            registry.gauge("inference.hbg_edges").set(self.graph.edge_count())
        for listener in self._listeners:
            listener(event, relinked)

    def _observe_indexed(self, event: IOEvent) -> Tuple[IOEvent, ...]:
        self._index.add(event)
        self.graph.add_event(event)
        self._link(event)
        # The new event may be the cause of already-observed events
        # whose logged timestamps are within the re-link horizon.
        # ``after`` starts strictly past every event sharing this
        # timestamp, matching the legacy insertion point semantics.
        if self._full:
            return self._relink_forward(event)
        relinked: List[IOEvent] = []
        horizon = (event.timestamp + self._relink_ahead, MAX_ID)
        for cons in list(
            self._index.after((event.timestamp, MAX_ID), horizon)
        ):
            self._link(cons)
            relinked.append(cons)
        return tuple(relinked)

    def _relink_forward(self, event: IOEvent) -> Tuple[IOEvent, ...]:
        """Full-relink via forward bucket queries.

        For each rule the new event can antecede, read the consequent
        buckets the forward plan names over
        ``[event.t - skew, event.t + rule.window]`` — a superset of
        every candidate list the event can enter — then keep exactly
        the consequents :meth:`_could_affect` confirms.  Equivalent to
        scanning the whole ``relink_window()`` horizon, at the cost of
        a few bucket reads per observe instead of the entire stream.
        """
        collected: Dict[int, IOEvent] = {}
        lo = (event.timestamp - self._relink_behind, 0)
        config = self.engine.config
        if config.use_rules:
            for position, rule in enumerate(self.engine.rules):
                if not rule.antecedent.matches(event):
                    continue
                hi = (event.timestamp + rule.window, MAX_ID)
                fplan = self._fplans[position]
                if fplan.kinds:
                    candidates = self._index.candidates(
                        fplan, event, lo, hi
                    )
                else:
                    # A kind-free consequent pattern has no bucket.
                    candidates = self._index.window(lo, hi)
                for cons in candidates:
                    collected.setdefault(cons.event_id, cons)
        naive_window = 0.0
        if config.naive_prefix_timestamp:
            naive_window = config.naive_window
        if config.use_patterns and self.engine.miner is not None:
            naive_window = max(naive_window, self.engine.miner.window)
        if naive_window:
            hi = (event.timestamp + naive_window, MAX_ID)
            for cons in self._index.window(lo, hi):
                if _prefix_compatible(event, cons):
                    collected.setdefault(cons.event_id, cons)
        collected.pop(event.event_id, None)
        relinked: List[IOEvent] = []
        for cons in sorted(
            collected.values(), key=lambda e: (e.timestamp, e.event_id)
        ):
            if not self._could_affect(event, cons):
                continue
            self._link(cons)
            relinked.append(cons)
        return tuple(relinked)

    def _observe_legacy(self, event: IOEvent) -> Tuple[IOEvent, ...]:
        position = bisect.bisect_right(self._times, event.timestamp)
        # The O(N) inserts are exactly what the indexed path exists to
        # avoid; this branch is the differential-testing reference.
        self._ordered.insert(position, event)  # repro: lint-ignore[PERF001] -- legacy reference path
        self._times.insert(position, event.timestamp)  # repro: lint-ignore[PERF001] -- legacy reference path
        self.graph.add_event(event)
        self._link(event)
        relinked: List[IOEvent] = []
        if self._relink_behind:
            start = bisect.bisect_left(
                self._times, event.timestamp - self._relink_behind
            )
            for cons in self._ordered[start:position]:
                if cons.event_id == event.event_id:
                    continue
                if self._full and not self._could_affect(event, cons):
                    continue
                self._link(cons)
                relinked.append(cons)
        horizon = event.timestamp + self._ahead_horizon(event)
        index = position + 1
        while index < len(self._ordered) and self._times[index] <= horizon:
            cons = self._ordered[index]
            if not self._full or self._could_affect(event, cons):
                self._link(cons)
                relinked.append(cons)
            index += 1
        return tuple(relinked)

    def _link(self, cons: IOEvent) -> None:
        # Replace, don't accumulate: a re-link may change which
        # candidate a pick-latest rule chooses, and the superseded
        # edge must go (clear is a no-op for a fresh event).
        self.graph.clear_in_edges(cons.event_id)
        for ante, evidence in self.engine._edges_into(cons, self._source):
            self.graph.add_edge(ante.event_id, cons.event_id, evidence)

    def __len__(self) -> int:
        if self._legacy:
            return len(self._ordered)
        return len(self._index)


# -- scoring against ground truth ----------------------------------------------


@dataclass(frozen=True)
class InferenceScore:
    """Precision/recall of an inferred HBG against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} (tp={self.true_positives} "
            f"fp={self.false_positives} fn={self.false_negatives})"
        )


def score_inference(
    graph: HappensBeforeGraph,
    ground_truth: GroundTruth,
    observable_ids: Optional[Set[int]] = None,
    min_confidence: float = 0.0,
) -> InferenceScore:
    """Compare inferred edges with the simulator's true dependencies.

    ``observable_ids`` restricts ground truth to events the collector
    actually saw (edges to/from unobservable events — external
    routers, dropped log lines — cannot be inferred and are excluded
    from the recall denominator).
    """
    inferred = {
        (e.cause, e.effect)
        for e in graph.edges()
        if e.evidence.confidence >= min_confidence
    }
    truth = ground_truth.edge_set()
    if observable_ids is not None:
        truth = {
            (c, f)
            for c, f in truth
            if c in observable_ids and f in observable_ids
        }
    tp = len(inferred & truth)
    fp = len(inferred - truth)
    fn = len(truth - inferred)
    return InferenceScore(tp, fp, fn)
