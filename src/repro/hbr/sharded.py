"""Sharded (multi-process) HBG construction.

CB-VER (see PAPERS.md) argues control-plane reasoning should be
modular: partition the network, reason per partition, combine.  The
same shape applies to HBG *construction* — inference is per-consequent
and never reads the graph being built, so the event stream can be
partitioned by router, each shard's edges inferred in a separate
worker process, and the results merged centrally.

Determinism is the load-bearing property here (the cross-process
byte-identical gate in tests/test_determinism.py covers this path):

* shard assignment round-robins over the *sorted* router names, so it
  is independent of hash seeds and worker scheduling;
* workers return plain edge *records* ``(cons_ts, cons_id, seq,
  cause_id, evidence)`` — ``seq`` is the edge's position within its
  consequent's inferred-edge list;
* the parent sorts all records by ``(cons_ts, cons_id, seq)`` before
  applying them, which replays the exact ``add_edge`` order of the
  serial build.  Since inference is graph-stateless, cycle rejection
  and duplicate-evidence upgrades resolve identically, so the merged
  graph equals the serial graph byte for byte.

Worker processes are forked (the engine, rule table and event list
are inherited, not pickled); where ``fork`` is unavailable the shards
run sequentially in-process, which is slower but identical.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.capture.io_events import IOEvent
from repro.hbr.graph import EdgeEvidence, HappensBeforeGraph

#: One inferred edge, in merge-sortable form: (consequent timestamp,
#: consequent id, per-consequent sequence number, cause id, evidence
#: technique, evidence rule, evidence confidence).  Evidence travels
#: as primitives — unpickling tens of thousands of dataclasses in the
#: parent costs more than the workers save.
EdgeRecord = Tuple[float, int, int, int, str, str, float]

#: Per-rule timing aggregate a shard returns: rule name ->
#: (invocations, total wall seconds).  Workers must not touch the
#: process-global registry (anything they wrote would die with the
#: forked process — lint rule CONC001), so timings travel home in the
#: return value and the parent folds them into
#: ``inference.rule_invocations_total`` / ``inference.rule_seconds_total``.
ShardTimings = Dict[str, Tuple[int, float]]

#: Stashed (engine, ordered events) for forked workers — set in the
#: parent immediately before the fork so children inherit it without
#: pickling the (possibly large) event list per task.
_WORK: Optional[Tuple[object, Sequence[IOEvent]]] = None


def shard_routers(routers: Sequence[str], workers: int) -> List[List[str]]:
    """Deterministically round-robin sorted router names over shards.

    Sorting first makes the assignment a pure function of the router
    set — independent of PYTHONHASHSEED, arrival order, or scheduling.
    """
    ordered = sorted(routers)
    workers = max(1, workers)
    shards = [ordered[i::workers] for i in range(workers)]
    return [shard for shard in shards if shard]


def infer_shard(
    engine, ordered: Sequence[IOEvent], routers: Sequence[str]
) -> Tuple[List[EdgeRecord], ShardTimings]:
    """Infer edges for consequents hosted on ``routers``.

    The candidate source still spans the *whole* stream: a shard owns
    its consequents, not its antecedents (peer-symmetric rules reach
    across shard boundaries).  Returns the edge records plus the
    shard's per-rule timing aggregate (empty when obs is off).
    """
    wanted = frozenset(routers)
    source = engine._batch_source(ordered)
    records: List[EdgeRecord] = []
    tallies: Dict[str, List[float]] = {}
    timing_sink = None
    if obs.get_registry().enabled:
        # Aggregate locally; the parent merges after the join.  The
        # sink only writes this worker's own dict — never the (forked,
        # doomed) registry copy.
        def timing_sink(rule_name: str, seconds: float) -> None:
            tally = tallies.get(rule_name)
            if tally is None:
                tallies[rule_name] = [1, seconds]
            else:
                tally[0] += 1
                tally[1] += seconds

    for cons in ordered:
        if cons.router not in wanted:
            continue
        for seq, (ante, evidence) in enumerate(
            engine._infer_edges(cons, source, timing_sink)
        ):
            records.append(
                (
                    cons.timestamp,
                    cons.event_id,
                    seq,
                    ante.event_id,
                    evidence.technique,
                    evidence.rule,
                    evidence.confidence,
                )
            )
    return records, {
        rule: (int(count), seconds)
        for rule, (count, seconds) in tallies.items()
    }


def _run_shard(routers: List[str]) -> Tuple[List[EdgeRecord], ShardTimings]:
    if _WORK is None:  # set by build_sharded before forking
        raise RuntimeError("_run_shard called outside build_sharded")
    engine, ordered = _WORK
    return infer_shard(engine, ordered, routers)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-forking platform
        return None


def build_sharded(
    engine, ordered: Sequence[IOEvent], workers: int
) -> HappensBeforeGraph:
    """Build the HBG with ``workers`` forked shard processes.

    ``ordered`` must already be sorted by (timestamp, event_id) —
    :meth:`InferenceEngine.build_graph` guarantees it.  The result is
    byte-identical to the serial build.
    """
    global _WORK
    registry = obs.get_registry()
    graph = HappensBeforeGraph()
    for event in ordered:
        graph.add_event(event)
    routers = sorted({event.router for event in ordered})
    shards = shard_routers(routers, workers)
    context = _fork_context() if len(shards) > 1 else None
    if context is None:
        shard_results = [
            infer_shard(engine, ordered, shard) for shard in shards
        ]
    else:
        _WORK = (engine, ordered)
        try:
            with context.Pool(processes=len(shards)) as pool:
                shard_results = pool.map(_run_shard, shards)
        finally:
            _WORK = None
    records: List[EdgeRecord] = []
    merged_timings: Dict[str, List[float]] = {}
    for shard_records, shard_timings in shard_results:
        records.extend(shard_records)
        for rule, (count, seconds) in shard_timings.items():
            merged = merged_timings.get(rule)
            if merged is None:
                merged_timings[rule] = [count, seconds]
            else:
                merged[0] += count
                merged[1] += seconds
    # Replay the serial build's exact insertion order (see module
    # docstring for why this makes the merge byte-identical).
    records.sort(key=lambda r: (r[0], r[1], r[2]))
    recorder = obs.get_recorder()
    # Most edges share one of a handful of (technique, rule,
    # confidence) shapes; intern the rebuilt evidence objects.
    evidence_cache: dict = {}
    for _cons_ts, cons_id, _seq, cause_id, technique, rule, conf in records:
        evidence = evidence_cache.get((technique, rule, conf))
        if evidence is None:
            evidence = EdgeEvidence(
                technique=technique, rule=rule, confidence=conf
            )
            evidence_cache[(technique, rule, conf)] = evidence
        graph.add_edge(cause_id, cons_id, evidence)
        # Worker processes are throwaway forks, so the per-edge obs
        # emission of _edges_into is replayed here in the parent.
        if registry.enabled:
            registry.counter("inference.hbg_edges_inferred").inc()
            registry.counter(
                "inference.edges_by_technique",
                technique=evidence.technique,
            ).inc()
        if recorder.enabled:
            cons = graph.event(cons_id)
            recorder.record(
                obs.TraceKind.HBR_EDGE,
                at=cons.timestamp,
                router=cons.router,
                event_id=cons.event_id,
                cause=cause_id,
                rule=evidence.rule,
                technique=evidence.technique,
                confidence=evidence.confidence,
            )
    if registry.enabled:
        registry.counter("inference.sharded_builds_total").inc()
        registry.gauge("inference.shard_count").set(len(shards))
        # Replay the workers' per-rule timing aggregates.  Counters,
        # not histograms: per-call sample order is worker-scheduling
        # noise, but invocation counts and total seconds merge
        # deterministically.
        for rule in sorted(merged_timings):
            count, seconds = merged_timings[rule]
            registry.counter(
                "inference.rule_invocations_total", rule=rule
            ).inc(count)
            registry.counter(
                "inference.rule_seconds_total", rule=rule
            ).inc(seconds)
    return graph
