"""Happens-before relationships and the happens-before graph (§4).

The paper's central claim: observing a router's control-plane I/Os
and tracking dependencies *between* them — without modelling router
internals — suffices to verify and repair the network.  This package
implements:

* :mod:`repro.hbr.graph` — the happens-before graph (HBG) of §4.3;
* :mod:`repro.hbr.rules` — the declarative protocol rules of §4.1;
* :mod:`repro.hbr.inference` — the four inference techniques of
  §4.2 (prefix filtering, timestamps, rule matching, pattern
  matching) and the combined engine;
* :mod:`repro.hbr.distributed` — per-router subgraphs and partial
  path exchange (§5, "Construction and analysis of the HBG can also
  be distributed").
"""

from repro.hbr.graph import Edge, EdgeEvidence, HappensBeforeGraph
from repro.hbr.rules import HbrRule, default_rules
from repro.hbr.inference import (
    InferenceConfig,
    InferenceEngine,
    PatternMiner,
    score_inference,
)
from repro.hbr.distributed import (
    BoundarySummary,
    DistributedHbg,
    DistributionUnsupported,
    RouterSubgraph,
    supports_distribution,
)

__all__ = [
    "BoundarySummary",
    "DistributedHbg",
    "DistributionUnsupported",
    "Edge",
    "EdgeEvidence",
    "HappensBeforeGraph",
    "HbrRule",
    "InferenceConfig",
    "InferenceEngine",
    "PatternMiner",
    "RouterSubgraph",
    "default_rules",
    "score_inference",
    "supports_distribution",
]
