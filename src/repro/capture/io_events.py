"""The control-plane I/O taxonomy of §4.1.

    "A router's control plane receives three types of input: protocol
    configurations, hardware status changes (e.g., link down), and
    route advertisements and withdrawals.  Based on this input,
    protocol- and vendor-specific algorithms produce three main types
    of output: FIB entries, routing information base (RIB) entries,
    and route advertisements and withdrawals (for other routers)."

Every boundary crossing becomes one immutable :class:`IOEvent`.  The
fields deliberately contain only what a real capture shim could see
in router logs — router name, timestamp, event kind, protocol,
prefix, session peer, and route attributes.  They never contain the
identity of the causing event; recovering causes is the job of HBR
inference (:mod:`repro.hbr`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.net.addr import Prefix


class IOKind(enum.Enum):
    """The six I/O kinds of §4.1 — three inputs, three outputs."""

    # inputs
    CONFIG_CHANGE = "config_change"
    HARDWARE_STATUS = "hardware_status"
    ROUTE_RECEIVE = "route_receive"
    # outputs
    RIB_UPDATE = "rib_update"
    FIB_UPDATE = "fib_update"
    ROUTE_SEND = "route_send"

    @property
    def direction(self) -> "Direction":
        if self in (IOKind.CONFIG_CHANGE, IOKind.HARDWARE_STATUS, IOKind.ROUTE_RECEIVE):
            return Direction.INPUT
        return Direction.OUTPUT


class Direction(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


class RouteAction(enum.Enum):
    """Whether an event adds or removes routing state."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"

    def opposite(self) -> "RouteAction":
        if self is RouteAction.ANNOUNCE:
            return RouteAction.WITHDRAW
        return RouteAction.ANNOUNCE


_event_ids = itertools.count(1)


def reset_event_ids() -> None:
    """Restart the global event-id counter (test isolation only)."""
    global _event_ids
    _event_ids = itertools.count(1)


@dataclass(frozen=True)
class IOEvent:
    """One captured control-plane input or output.

    ``attrs`` holds observable route attributes (local-pref, AS path,
    next hop, ...) for route events, the changed key for config
    events, or the link name for hardware events.  It is stored as a
    sorted tuple of pairs so events stay hashable and comparable.
    """

    event_id: int
    router: str
    kind: IOKind
    timestamp: float
    protocol: Optional[str] = None
    prefix: Optional[Prefix] = None
    action: Optional[RouteAction] = None
    peer: Optional[str] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        router: str,
        kind: IOKind,
        timestamp: float,
        protocol: Optional[str] = None,
        prefix: Optional[Prefix] = None,
        action: Optional[RouteAction] = None,
        peer: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> "IOEvent":
        """Build an event with a fresh globally-unique id."""
        packed: Tuple[Tuple[str, Any], ...] = ()
        if attrs:
            packed = tuple(sorted(attrs.items()))
        return cls(
            event_id=next(_event_ids),
            router=router,
            kind=kind,
            timestamp=timestamp,
            protocol=protocol,
            prefix=prefix,
            action=action,
            peer=peer,
            attrs=packed,
        )

    @property
    def direction(self) -> Direction:
        return self.kind.direction

    @property
    def is_route_event(self) -> bool:
        return self.kind in (
            IOKind.ROUTE_RECEIVE,
            IOKind.ROUTE_SEND,
            IOKind.RIB_UPDATE,
            IOKind.FIB_UPDATE,
        )

    def attr(self, key: str, default: Any = None) -> Any:
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def attrs_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)

    def describe(self) -> str:
        """Human-readable one-liner, in the style of the paper's Fig. 4."""
        if self.kind is IOKind.CONFIG_CHANGE:
            what = self.attr("description") or self.attr("key") or "config"
            return f"{self.router} config change ({what})"
        if self.kind is IOKind.HARDWARE_STATUS:
            link = self.attr("link", "?")
            status = self.attr("status", "?")
            return f"{self.router} link {link} {status}"
        action = self.action.value if self.action else "?"
        proto = self.protocol or "?"
        if self.kind is IOKind.ROUTE_RECEIVE:
            return (
                f"{self.router} recv {proto} {action} {self.prefix} "
                f"from {self.peer}"
            )
        if self.kind is IOKind.ROUTE_SEND:
            return f"{self.router} send {proto} {action} {self.prefix} to {self.peer}"
        if self.kind is IOKind.RIB_UPDATE:
            verb = "update" if self.action is RouteAction.ANNOUNCE else "remove"
            return f"{self.router} {verb} {self.prefix} in {proto} RIB"
        verb = "install" if self.action is RouteAction.ANNOUNCE else "remove"
        nh = self.attr("next_hop_router")
        via = f" via {nh}" if nh else ""
        return f"{self.router} {verb} {self.prefix}{via} in FIB"

    def to_record(self) -> Dict[str, Any]:
        """A flat dict for serialisation / log export."""
        return {
            "event_id": self.event_id,
            "router": self.router,
            "kind": self.kind.value,
            "timestamp": self.timestamp,
            "protocol": self.protocol,
            "prefix": str(self.prefix) if self.prefix else None,
            "action": self.action.value if self.action else None,
            "peer": self.peer,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "IOEvent":
        """Inverse of :meth:`to_record` (event_id preserved)."""
        prefix_text = record.get("prefix")
        action_text = record.get("action")
        return cls(
            event_id=int(record["event_id"]),
            router=str(record["router"]),
            kind=IOKind(record["kind"]),
            timestamp=float(record["timestamp"]),
            protocol=record.get("protocol"),
            prefix=Prefix.parse(prefix_text) if prefix_text else None,
            action=RouteAction(action_text) if action_text else None,
            peer=record.get("peer"),
            attrs=tuple(sorted((record.get("attrs") or {}).items())),
        )

    def __str__(self) -> str:
        return f"#{self.event_id}@{self.timestamp:.4f}s {self.describe()}"
