"""Control-plane I/O capture: the paper's interposition layer (§4).

Routers emit :class:`~repro.capture.io_events.IOEvent` records at
every control-plane boundary crossing.  The :class:`~repro.capture.
logger.RouterLogger` is the per-router shim (what the paper gets from
IOS ``debug`` / Junos traceoptions), and the :class:`~repro.capture.
collector.Collector` is the central (or per-router, for the
distributed mode) event store that HBR inference consumes.

Ground-truth dependencies — which the real system would *not* have —
are recorded on a separate channel (:class:`~repro.capture.
ground_truth.GroundTruth`) purely so the benchmarks can score the
accuracy of HBR inference.
"""

from repro.capture.io_events import Direction, IOEvent, IOKind, RouteAction
from repro.capture.ground_truth import GroundTruth
from repro.capture.logger import RouterLogger
from repro.capture.collector import Collector

__all__ = [
    "Collector",
    "Direction",
    "GroundTruth",
    "IOEvent",
    "IOKind",
    "RouteAction",
    "RouterLogger",
]
