"""Per-router capture shim.

The paper (§4.2): "most commercial router platforms provide a
mechanism for logging control plane I/Os locally or to a remote
server".  :class:`RouterLogger` plays that role for our simulated
routers: every boundary crossing goes through :meth:`log`, which
timestamps the event with the router's *local clock* (simulation time
plus a per-router clock skew) and forwards it to the collector.

Clock skew matters: the paper's timestamp-based inference technique
explicitly cannot rely on perfectly synchronised wall clocks, so the
shim lets scenarios inject bounded skew and the inference benchmarks
measure its effect.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Mapping, Optional

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix

LogSink = Callable[[IOEvent], None]


class RouterLogger:
    """Capture shim for one router.

    ``clock_skew`` (seconds, may be negative) offsets the timestamps
    this router reports; ``drop_rate`` lets failure-injection tests
    simulate lost log messages (a real syslog stream is UDP).
    """

    def __init__(
        self,
        router: str,
        sink: LogSink,
        clock_skew: float = 0.0,
        drop_rate: float = 0.0,
        rng: Optional[Any] = None,
    ):
        if drop_rate < 0.0 or drop_rate > 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        if drop_rate > 0.0 and rng is None:
            raise ValueError("drop_rate > 0 requires an rng")
        self.router = router
        self.clock_skew = clock_skew
        self.drop_rate = drop_rate
        self._sink = sink
        self._rng = rng
        self.events_logged = 0
        self.events_dropped = 0

    def log(
        self,
        kind: IOKind,
        sim_time: float,
        protocol: Optional[str] = None,
        prefix: Optional[Prefix] = None,
        action: Optional[RouteAction] = None,
        peer: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> IOEvent:
        """Create, timestamp, and emit one I/O event.

        The event is always *created* (the router did perform the I/O)
        and always returned, so the caller can wire ground truth; only
        delivery to the collector is subject to ``drop_rate``.
        """
        event = IOEvent.create(
            router=self.router,
            kind=kind,
            timestamp=sim_time + self.clock_skew,
            protocol=protocol,
            prefix=prefix,
            action=action,
            peer=peer,
            attrs=attrs,
        )
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.events_dropped += 1
            return event
        self._sink(event)
        self.events_logged += 1
        return event


class BufferingSink:
    """A sink that buffers events for batched delivery.

    Models routers that ship logs periodically rather than per-event;
    the snapshot-consistency benchmarks use this to create windows in
    which the collector's view is incomplete (the Fig. 1c situation).
    """

    def __init__(self, downstream: LogSink):
        self._downstream = downstream
        self._buffer: List[IOEvent] = []

    def __call__(self, event: IOEvent) -> None:
        self._buffer.append(event)

    def flush(self) -> int:
        """Deliver all buffered events; returns how many were sent."""
        count = len(self._buffer)
        for event in self._buffer:
            self._downstream(event)
        self._buffer.clear()
        return count

    def pending(self) -> int:
        return len(self._buffer)

    def peek(self) -> Iterable[IOEvent]:
        return tuple(self._buffer)
