"""Central event collector.

Receives the observable I/O streams of every router and indexes them
for HBR inference: by router, by kind, by prefix, and in arrival
order.  The collector is deliberately dumb — it stores and indexes,
nothing more — because every ounce of intelligence (which events
relate to which) belongs to :mod:`repro.hbr` per the paper's design.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro import obs
from repro.capture.io_events import Direction, IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix


class Collector:
    """Indexed store of captured I/O events."""

    def __init__(self) -> None:
        self._events: List[IOEvent] = []
        self._by_id: Dict[int, IOEvent] = {}
        self._by_router: Dict[str, List[IOEvent]] = defaultdict(list)
        self._by_kind: Dict[IOKind, List[IOEvent]] = defaultdict(list)
        self._by_prefix: Dict[Optional[Prefix], List[IOEvent]] = defaultdict(list)
        #: Subscribers notified of every new event (streaming consumers,
        #: e.g. the online verification pipeline).
        self._subscribers: List[Callable[[IOEvent], None]] = []

    def ingest(self, event: IOEvent) -> None:
        """Add one event to the store and notify subscribers."""
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        if event.event_id in self._by_id:
            raise ValueError(f"duplicate event id {event.event_id}")
        self._events.append(event)
        self._by_id[event.event_id] = event
        self._by_router[event.router].append(event)
        self._by_kind[event.kind].append(event)
        self._by_prefix[event.prefix].append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.record(
                obs.TraceKind.IO_CAPTURED,
                at=event.timestamp,
                router=event.router,
                event_id=event.event_id,
                detail=event.describe(),
            )
        if registry.enabled:
            registry.counter("capture.events_total").inc()
            registry.counter(
                "capture.events_by_kind", kind=event.kind.value
            ).inc()
            registry.histogram("capture.ingest_seconds").observe(
                watch.elapsed()
            )
            registry.gauge("capture.routers_seen").set(len(self._by_router))

    def subscribe(self, callback: Callable[[IOEvent], None]) -> None:
        self._subscribers.append(callback)

    # -- lookups ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[IOEvent]:
        return iter(self._events)

    def get(self, event_id: int) -> IOEvent:
        try:
            return self._by_id[event_id]
        except KeyError:
            raise KeyError(f"no event with id {event_id}") from None

    def has(self, event_id: int) -> bool:
        return event_id in self._by_id

    def all_events(self) -> List[IOEvent]:
        return list(self._events)

    def events_of(self, router: str) -> List[IOEvent]:
        return list(self._by_router.get(router, ()))

    def events_of_kind(self, kind: IOKind) -> List[IOEvent]:
        return list(self._by_kind.get(kind, ()))

    def events_for_prefix(self, prefix: Prefix) -> List[IOEvent]:
        """Events whose prefix field equals ``prefix`` exactly."""
        return list(self._by_prefix.get(prefix, ()))

    def routers(self) -> List[str]:
        return sorted(self._by_router)

    def prefixes(self) -> List[Prefix]:
        return sorted(p for p in self._by_prefix if p is not None)

    def query(
        self,
        router: Optional[str] = None,
        kind: Optional[IOKind] = None,
        prefix: Optional[Prefix] = None,
        action: Optional[RouteAction] = None,
        protocol: Optional[str] = None,
        peer: Optional[str] = None,
        direction: Optional[Direction] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[IOEvent]:
        """Filtered event list; every argument is an AND-ed constraint.

        Starts from the narrowest available index to keep the scan
        small on large captures.
        """
        if prefix is not None:
            candidates: Iterable[IOEvent] = self._by_prefix.get(prefix, ())
        elif router is not None:
            candidates = self._by_router.get(router, ())
        elif kind is not None:
            candidates = self._by_kind.get(kind, ())
        else:
            candidates = self._events
        result = []
        for event in candidates:
            if router is not None and event.router != router:
                continue
            if kind is not None and event.kind != kind:
                continue
            if prefix is not None and event.prefix != prefix:
                continue
            if action is not None and event.action != action:
                continue
            if protocol is not None and event.protocol != protocol:
                continue
            if peer is not None and event.peer != peer:
                continue
            if direction is not None and event.direction != direction:
                continue
            if since is not None and event.timestamp < since:
                continue
            if until is not None and event.timestamp > until:
                continue
            result.append(event)
        return result

    def fib_updates(
        self, prefix: Optional[Prefix] = None, router: Optional[str] = None
    ) -> List[IOEvent]:
        """Convenience: all FIB_UPDATE events, optionally filtered."""
        return self.query(router=router, kind=IOKind.FIB_UPDATE, prefix=prefix)

    def latest_fib_state(
        self, until: Optional[float] = None
    ) -> Dict[str, Dict[Prefix, IOEvent]]:
        """Per-router latest FIB event per prefix, as of time ``until``.

        This is the *naive* reconstruction of the data plane from the
        log — exactly what a timestamp-window snapshotter would do.
        """
        state: Dict[str, Dict[Prefix, IOEvent]] = defaultdict(dict)
        for event in self._by_kind.get(IOKind.FIB_UPDATE, ()):
            if until is not None and event.timestamp > until:
                continue
            if event.prefix is None:
                continue
            current = state[event.router].get(event.prefix)
            if current is None or event.timestamp >= current.timestamp:
                state[event.router][event.prefix] = event
        return dict(state)

    def export_records(self) -> List[dict]:
        """Serialise all events (for offline analysis / examples)."""
        return [event.to_record() for event in self._events]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "Collector":
        collector = cls()
        for record in records:
            collector.ingest(IOEvent.from_record(record))
        return collector
