"""Ground-truth dependency channel (evaluation only).

The simulator *created* every dependency between control-plane I/Os,
so it can record them exactly.  A real deployment has no such oracle
— that is the whole reason the paper proposes HBR *inference* — so
this channel is kept strictly separate from the observable
:class:`~repro.capture.io_events.IOEvent` stream and is consumed only
by the benchmarks that score inference precision/recall (experiment
C-INF in DESIGN.md).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple


class GroundTruth:
    """Exact cause → effect edges between event ids."""

    def __init__(self) -> None:
        self._causes: Dict[int, Set[int]] = defaultdict(set)
        self._effects: Dict[int, Set[int]] = defaultdict(set)

    def record(self, cause_id: int, effect_id: int) -> None:
        """Record that event ``cause_id`` happened-before ``effect_id``."""
        if cause_id == effect_id:
            raise ValueError(f"event {cause_id} cannot cause itself")
        self._causes[effect_id].add(cause_id)
        self._effects[cause_id].add(effect_id)

    def record_all(self, cause_ids: Iterable[int], effect_id: int) -> None:
        for cause_id in cause_ids:
            self.record(cause_id, effect_id)

    def causes_of(self, event_id: int) -> Set[int]:
        return set(self._causes.get(event_id, ()))

    def effects_of(self, event_id: int) -> Set[int]:
        return set(self._effects.get(event_id, ()))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All (cause, effect) pairs."""
        for effect, causes in self._causes.items():
            for cause in sorted(causes):
                yield (cause, effect)

    def edge_set(self) -> Set[Tuple[int, int]]:
        return set(self.edges())

    def transitive_causes(self, event_id: int) -> Set[int]:
        """All ancestors of ``event_id`` under the true dependency order."""
        seen: Set[int] = set()
        stack: List[int] = [event_id]
        while stack:
            current = stack.pop()
            for cause in self._causes.get(current, ()):
                if cause not in seen:
                    seen.add(cause)
                    stack.append(cause)
        return seen

    def root_causes(self, event_id: int) -> Set[int]:
        """True ancestors of ``event_id`` that themselves have no cause."""
        ancestors = self.transitive_causes(event_id)
        if not ancestors:
            return set()
        return {a for a in ancestors if not self._causes.get(a)}

    def __len__(self) -> int:
        return sum(len(causes) for causes in self._causes.values())
