"""FRR-flavoured log adapter: textual router logs <-> IOEvents.

§4.2: "most commercial router platforms provide a mechanism for
logging control plane I/Os locally or to a remote server [10, 20],
and open-source platforms [3] could be readily extended to provide
such functionality."  A real deployment of this system on
Mininet/FRR would consume ``bgpd``/``zebra`` debug logs; this module
defines the line grammar such a shim produces and parses it back into
:class:`~repro.capture.io_events.IOEvent` records, so the entire HBR
pipeline runs unchanged off textual logs.

Line grammar (one event per line, syslog-ish)::

    <ts> <router> bgpd: <peer> rcvd UPDATE <prefix> nexthop <ip> path <asns> [localpref <n>] [med <n>]
    <ts> <router> bgpd: <peer> rcvd WITHDRAW <prefix>
    <ts> <router> bgpd: <peer> send UPDATE <prefix> nexthop <ip> path <asns> [localpref <n>] [med <n>]
    <ts> <router> bgpd: <peer> send WITHDRAW <prefix>
    <ts> <router> bgpd: best path <prefix> via <peer-or-local> localpref <n>
    <ts> <router> bgpd: best path <prefix> removed
    <ts> <router> zebra: route add <prefix> via <router> dev <iface> proto <proto>
    <ts> <router> zebra: route del <prefix>
    <ts> <router> zebra: interface <iface> state <up|down>
    <ts> <router> vtysh: config change #<id> '<description>'

Timestamps are seconds (float) to preserve the simulator's resolution;
a real shim would emit epoch time, which parses identically.

:func:`render_event` writes this grammar and :class:`FrrLogParser`
reads it; ``parse(render(event))`` preserves every field the HBR
machinery consumes (router, kind, protocol, prefix, action, peer, and
the attributes the rules inspect).  Events the grammar does not cover
(OSPF LSAs, EIGRP vectors) are rendered as opaque ``#`` comment lines
and skipped on parse.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix


class FrrParseError(ValueError):
    """Raised for lines that look like events but do not parse."""


# -- rendering ----------------------------------------------------------------


def _path_text(event: IOEvent) -> str:
    return str(event.attr("as_path") or "")


def render_event(event: IOEvent) -> str:
    """One grammar line for ``event`` (comment line if not covered)."""
    ts = f"{event.timestamp:.6f}"
    head = f"{ts} {event.router}"
    if event.kind is IOKind.CONFIG_CHANGE:
        change_id = event.attr("change_id", 0)
        description = event.attr("description") or event.attr("kind") or ""
        return f"{head} vtysh: config change #{change_id} '{description}'"
    if event.kind is IOKind.HARDWARE_STATUS:
        return (
            f"{head} zebra: interface {event.attr('link')} "
            f"state {event.attr('status')}"
        )
    if event.protocol == "bgp" and event.kind in (
        IOKind.ROUTE_RECEIVE,
        IOKind.ROUTE_SEND,
    ):
        verb = "rcvd" if event.kind is IOKind.ROUTE_RECEIVE else "send"
        if event.action is RouteAction.WITHDRAW:
            return f"{head} bgpd: {event.peer} {verb} WITHDRAW {event.prefix}"
        text = (
            f"{head} bgpd: {event.peer} {verb} UPDATE {event.prefix} "
            f"nexthop {event.attr('next_hop')} path {_path_text(event)}"
        )
        if event.attr("local_pref") is not None:
            text += f" localpref {event.attr('local_pref')}"
        if event.attr("med") is not None:
            text += f" med {event.attr('med')}"
        return text
    if event.protocol == "bgp" and event.kind is IOKind.RIB_UPDATE:
        if event.action is RouteAction.WITHDRAW:
            return f"{head} bgpd: best path {event.prefix} removed"
        via = event.attr("via") or "local"
        return (
            f"{head} bgpd: best path {event.prefix} via {via} "
            f"localpref {event.attr('local_pref', 100)}"
        )
    if event.kind is IOKind.FIB_UPDATE:
        if event.action is RouteAction.WITHDRAW:
            return f"{head} zebra: route del {event.prefix}"
        return (
            f"{head} zebra: route add {event.prefix} "
            f"via {event.attr('next_hop_router') or 'local'} "
            f"dev {event.attr('out_interface') or 'lo'} "
            f"proto {event.protocol}"
        )
    return f"# {head} unsupported: {event.describe()}"


def render_events(events: Iterable[IOEvent]) -> str:
    return "\n".join(render_event(e) for e in events)


# -- parsing -----------------------------------------------------------------

_HEAD = r"(?P<ts>\d+(?:\.\d+)?) (?P<router>\S+) "

_PATTERNS = [
    (
        "bgp_update",
        re.compile(
            _HEAD
            + r"bgpd: (?P<peer>\S+) (?P<verb>rcvd|send) UPDATE "
            r"(?P<prefix>\S+) nexthop (?P<nexthop>\S+) path (?P<path>\S*)"
            r"(?: localpref (?P<lp>\d+))?(?: med (?P<med>\d+))?$"
        ),
    ),
    (
        "bgp_withdraw",
        re.compile(
            _HEAD
            + r"bgpd: (?P<peer>\S+) (?P<verb>rcvd|send) WITHDRAW (?P<prefix>\S+)$"
        ),
    ),
    (
        "bgp_best",
        re.compile(
            _HEAD
            + r"bgpd: best path (?P<prefix>\S+) via (?P<via>\S+) "
            r"localpref (?P<lp>\d+)$"
        ),
    ),
    (
        "bgp_best_removed",
        re.compile(_HEAD + r"bgpd: best path (?P<prefix>\S+) removed$"),
    ),
    (
        "fib_add",
        re.compile(
            _HEAD
            + r"zebra: route add (?P<prefix>\S+) via (?P<via>\S+) "
            r"dev (?P<dev>\S+) proto (?P<proto>\S+)$"
        ),
    ),
    (
        "fib_del",
        re.compile(_HEAD + r"zebra: route del (?P<prefix>\S+)$"),
    ),
    (
        "interface",
        re.compile(
            _HEAD + r"zebra: interface (?P<iface>\S+) state (?P<state>up|down)$"
        ),
    ),
    (
        "config",
        re.compile(
            _HEAD + r"vtysh: config change #(?P<id>\d+) '(?P<desc>.*)'$"
        ),
    ),
]


class FrrLogParser:
    """Parse grammar lines back into IOEvents.

    Parsed events receive fresh event ids — a real shim has no access
    to another collector's numbering, and nothing in the HBR pipeline
    depends on ids carrying meaning.
    """

    def __init__(self) -> None:
        self.lines_parsed = 0
        self.lines_skipped = 0

    def parse_line(self, line: str) -> Optional[IOEvent]:
        line = line.strip()
        if not line or line.startswith("#"):
            self.lines_skipped += 1
            return None
        for name, pattern in _PATTERNS:
            match = pattern.match(line)
            if match is None:
                continue
            self.lines_parsed += 1
            return self._build(name, match)
        raise FrrParseError(f"unparseable log line: {line!r}")

    def parse(self, text: str) -> List[IOEvent]:
        events = []
        for line in text.splitlines():
            event = self.parse_line(line)
            if event is not None:
                events.append(event)
        return events

    def _build(self, name: str, match: re.Match) -> IOEvent:
        ts = float(match["ts"])
        router = match["router"]
        if name == "bgp_update":
            kind = (
                IOKind.ROUTE_RECEIVE
                if match["verb"] == "rcvd"
                else IOKind.ROUTE_SEND
            )
            attrs = {
                "next_hop": match["nexthop"],
                "as_path": match["path"],
            }
            if match["lp"] is not None:
                attrs["local_pref"] = int(match["lp"])
            if match["med"] is not None:
                attrs["med"] = int(match["med"])
            return IOEvent.create(
                router,
                kind,
                ts,
                protocol="bgp",
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.ANNOUNCE,
                peer=match["peer"],
                attrs=attrs,
            )
        if name == "bgp_withdraw":
            kind = (
                IOKind.ROUTE_RECEIVE
                if match["verb"] == "rcvd"
                else IOKind.ROUTE_SEND
            )
            return IOEvent.create(
                router,
                kind,
                ts,
                protocol="bgp",
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.WITHDRAW,
                peer=match["peer"],
            )
        if name == "bgp_best":
            return IOEvent.create(
                router,
                IOKind.RIB_UPDATE,
                ts,
                protocol="bgp",
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.ANNOUNCE,
                attrs={
                    "via": match["via"],
                    "local_pref": int(match["lp"]),
                },
            )
        if name == "bgp_best_removed":
            return IOEvent.create(
                router,
                IOKind.RIB_UPDATE,
                ts,
                protocol="bgp",
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.WITHDRAW,
            )
        if name == "fib_add":
            via = match["via"]
            return IOEvent.create(
                router,
                IOKind.FIB_UPDATE,
                ts,
                protocol=match["proto"],
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.ANNOUNCE,
                attrs={
                    "next_hop_router": None if via == "local" else via,
                    "out_interface": match["dev"],
                    "discard": False,
                },
            )
        if name == "fib_del":
            return IOEvent.create(
                router,
                IOKind.FIB_UPDATE,
                ts,
                protocol="bgp",
                prefix=Prefix.parse(match["prefix"]),
                action=RouteAction.WITHDRAW,
            )
        if name == "interface":
            return IOEvent.create(
                router,
                IOKind.HARDWARE_STATUS,
                ts,
                attrs={"link": match["iface"], "status": match["state"]},
            )
        if name == "config":
            return IOEvent.create(
                router,
                IOKind.CONFIG_CHANGE,
                ts,
                attrs={
                    "change_id": int(match["id"]),
                    "description": match["desc"],
                },
            )
        raise FrrParseError(f"unknown pattern {name!r}")
