"""Command-line interface: run the paper's scenarios from a shell.

Usage::

    python -m repro demo fig1          # Figs. 1a/1b convergence
    python -m repro demo fig2          # the misconfiguration episode
    python -m repro demo fig5          # §7 feasibility replay (timeline)
    python -m repro demo pipeline      # Fig. 3 guard catching Fig. 2a
    python -m repro demo vendor        # Cisco vs Junos divergence
    python -m repro audit --routers 8  # random-network toolbox tour
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _demo_fig1(args: argparse.Namespace) -> int:
    from repro.scenarios.fig1 import Fig1Scenario
    from repro.scenarios.paper_net import P

    scenario = Fig1Scenario(seed=args.seed)
    net = scenario.run_fig1b()
    print("Fig. 1a -> 1b convergence complete.")
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        print(f"  {router}: {' -> '.join(path)} [{outcome}]")
    print(f"events captured: {len(net.collector)}")
    return 0


def _demo_fig2(args: argparse.Namespace) -> int:
    from repro.scenarios.fig2 import Fig2Scenario
    from repro.scenarios.paper_net import P

    scenario = Fig2Scenario(seed=args.seed)
    net = scenario.run_fig2a()
    print("Applied the Fig. 2a misconfiguration (LP 30 -> 10 on R2).")
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        print(f"  {router}: {' -> '.join(path)} [{outcome}]")
    print(f"policy violated: {scenario.violates_policy()}")
    return 0


def _demo_fig5(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import render_timeline
    from repro.scenarios.fig5 import Fig5Scenario

    scenario = Fig5Scenario(seed=args.seed)
    net = scenario.run_localpref_change()
    print("§7 feasibility replay — captured control-plane I/O timeline:")
    print()
    print(
        render_timeline(
            net.collector.all_events(),
            routers=["R1", "R2", "R3"],
            since=scenario.t_change,
        )
    )
    return 0


def _demo_pipeline(args: argparse.Namespace) -> int:
    from repro.core.pipeline import IntegratedControlPlane, PipelineMode
    from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
    from repro.scenarios.paper_net import P, paper_policy
    from repro.verify.policy import LoopFreedomPolicy

    scenario = Fig2Scenario(seed=args.seed)
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net,
        [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
        mode=PipelineMode.REPAIR,
    ).arm()
    net.apply_config_change(bad_lp_change())
    net.run(120)
    print(pipeline.summary())
    print(f"\npolicy violated after the episode: {scenario.violates_policy()}")
    return 0


def _demo_vendor(args: argparse.Namespace) -> int:
    from repro.scenarios.vendor import divergence

    cisco_exit, juniper_exit = divergence(seed=args.seed)
    print("Identical configs and inputs, two vendors:")
    print(f"  cisco   chooses exit via {cisco_exit} (oldest eBGP route)")
    print(f"  juniper chooses exit via {juniper_exit} (lowest router id)")
    print(f"  diverge: {cisco_exit != juniper_exit}")
    return 0


_DEMOS = {
    "fig1": _demo_fig1,
    "fig2": _demo_fig2,
    "fig5": _demo_fig5,
    "pipeline": _demo_pipeline,
    "vendor": _demo_vendor,
}


def _cmd_demo(args: argparse.Namespace) -> int:
    return _DEMOS[args.scenario](args)


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.hbr.inference import InferenceEngine, score_inference
    from repro.repair.equivalence import PrefixGrouper
    from repro.scenarios.generators import (
        build_random_network,
        churn_workload,
        external_prefixes,
    )
    from repro.snapshot.base import DataPlaneSnapshot
    from repro.verify.headerspace import compute_equivalence_classes

    net, specs = build_random_network(
        args.routers, uplinks=args.uplinks, seed=args.seed
    )
    net.start()
    prefixes = external_prefixes(args.prefixes)
    for prefix in prefixes:
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
    churn_workload(
        net, specs, prefixes, events=args.events, start=5.0, seed=args.seed
    )
    net.run(60)
    print(f"captured {len(net.collector)} control-plane I/O events")
    graph = InferenceEngine().build_graph(net.collector.all_events())
    observable = {e.event_id for e in net.collector}
    score = score_inference(graph, net.ground_truth, observable_ids=observable)
    print(f"HBR inference: {score}")
    snapshot = DataPlaneSnapshot.from_live_network(net)
    classes = compute_equivalence_classes(snapshot)
    groups = PrefixGrouper().group(snapshot)
    print(
        f"equivalence classes: {len(classes)} over "
        f"{len(snapshot.all_prefixes())} prefixes "
        f"({PrefixGrouper.compression(groups):.1f} prefixes/group)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrating Verification and Repair into the Control Plane "
            "(HotNets 2017) — reproduction toolkit"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one of the paper's scenarios")
    demo.add_argument("scenario", choices=sorted(_DEMOS))
    demo.set_defaults(func=_cmd_demo)

    audit = sub.add_parser("audit", help="toolbox tour on a random network")
    audit.add_argument("--routers", type=int, default=8)
    audit.add_argument("--uplinks", type=int, default=2)
    audit.add_argument("--prefixes", type=int, default=6)
    audit.add_argument("--events", type=int, default=12)
    audit.set_defaults(func=_cmd_audit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
