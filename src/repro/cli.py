"""Command-line interface: run the paper's scenarios from a shell.

Usage::

    python -m repro demo fig1          # Figs. 1a/1b convergence
    python -m repro demo fig2          # the misconfiguration episode
    python -m repro demo fig5          # §7 feasibility replay (timeline)
    python -m repro demo pipeline      # Fig. 3 guard catching Fig. 2a
    python -m repro demo vendor        # Cisco vs Junos divergence
    python -m repro audit --routers 8  # random-network toolbox tour
    python -m repro stats --scenario pipeline --format json
                                       # run + dump the metrics document
    python -m repro --metrics demo pipeline
                                       # any command + metrics report
    python -m repro --version

``stats`` is the observability entry point: it enables
:mod:`repro.obs`, runs one scenario, and renders the recorded
metrics/spans in any exporter format.  ``--require`` turns it into a
CI guard that exits nonzero when an expected pipeline stage recorded
nothing (silently-dead instrumentation).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import signal
import sys
import time
from typing import List, Optional

from repro import obs
from repro.obs.atomicio import atomic_write_text
from repro.obs.export import (
    RENDERERS,
    format_table,
    missing_sections,
    registry_to_dict,
    render_json,
)


def package_version() -> str:
    """Build identity, from installed metadata or the source tree."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:  # noqa: BLE001 - not installed; read the source tree
        pass
    try:
        import pathlib
        import tomllib

        pyproject = (
            pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
        )
        with open(pyproject, "rb") as handle:
            return tomllib.load(handle)["project"]["version"]
    except Exception:  # noqa: BLE001 - fall back to the package constant
        from repro import __version__

        return __version__


def _demo_fig1(args: argparse.Namespace) -> int:
    from repro.scenarios.fig1 import Fig1Scenario
    from repro.scenarios.paper_net import P

    scenario = Fig1Scenario(seed=args.seed)
    net = scenario.run_fig1b()
    print("Fig. 1a -> 1b convergence complete.")
    rows = []
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        rows.append((router, " -> ".join(path), outcome))
    print(format_table(("router", "path", "outcome"), rows))
    print(f"events captured: {len(net.collector)}")
    return 0


def _demo_fig2(args: argparse.Namespace) -> int:
    from repro.scenarios.fig2 import Fig2Scenario
    from repro.scenarios.paper_net import P

    scenario = Fig2Scenario(seed=args.seed)
    net = scenario.run_fig2a()
    print("Applied the Fig. 2a misconfiguration (LP 30 -> 10 on R2).")
    rows = []
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        rows.append((router, " -> ".join(path), outcome))
    print(format_table(("router", "path", "outcome"), rows))
    print(f"policy violated: {scenario.violates_policy()}")
    return 0


def _demo_fig5(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import render_timeline
    from repro.scenarios.fig5 import Fig5Scenario

    scenario = Fig5Scenario(seed=args.seed)
    net = scenario.run_localpref_change()
    print("§7 feasibility replay — captured control-plane I/O timeline:")
    print()
    print(
        render_timeline(
            net.collector.all_events(),
            routers=["R1", "R2", "R3"],
            since=scenario.t_change,
        )
    )
    return 0


def _demo_pipeline(args: argparse.Namespace) -> int:
    from repro.core.pipeline import IntegratedControlPlane, PipelineMode
    from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
    from repro.scenarios.paper_net import P, paper_policy
    from repro.verify.policy import LoopFreedomPolicy

    scenario = Fig2Scenario(seed=args.seed)
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net,
        [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
        mode=PipelineMode.REPAIR,
    ).arm()
    net.apply_config_change(bad_lp_change())
    net.run(120)
    print(pipeline.summary())
    print(f"\npolicy violated after the episode: {scenario.violates_policy()}")
    return 0


def _demo_vendor(args: argparse.Namespace) -> int:
    from repro.scenarios.vendor import divergence

    cisco_exit, juniper_exit = divergence(seed=args.seed)
    print("Identical configs and inputs, two vendors:")
    print(
        format_table(
            ("vendor", "chosen exit", "tie-break rule"),
            [
                (
                    "cisco",
                    cisco_exit,
                    "oldest eBGP route",
                ),
                (
                    "juniper",
                    juniper_exit,
                    "lowest router id",
                ),
            ],
        )
    )
    print(f"diverge: {cisco_exit != juniper_exit}")
    return 0


_DEMOS = {
    "fig1": _demo_fig1,
    "fig2": _demo_fig2,
    "fig5": _demo_fig5,
    "pipeline": _demo_pipeline,
    "vendor": _demo_vendor,
}


def _cmd_demo(args: argparse.Namespace) -> int:
    return _DEMOS[args.scenario](args)


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.hbr.inference import (
        InferenceConfig,
        InferenceEngine,
        score_inference,
    )
    from repro.repair.equivalence import PrefixGrouper
    from repro.scenarios.generators import (
        build_random_network,
        churn_workload,
        external_prefixes,
    )
    from repro.snapshot.base import DataPlaneSnapshot
    from repro.verify.headerspace import compute_equivalence_classes

    net, specs = build_random_network(
        args.routers, uplinks=args.uplinks, seed=args.seed
    )
    net.start()
    prefixes = external_prefixes(args.prefixes)
    for prefix in prefixes:
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
    churn_workload(
        net, specs, prefixes, events=args.events, start=5.0, seed=args.seed
    )
    net.run(60)
    engine = InferenceEngine(
        config=InferenceConfig(legacy_scan=args.legacy_scan)
    )
    distributed_rows = []
    if args.distributed:
        from repro.hbr.distributed import DistributedHbg

        dist = DistributedHbg(InferenceEngine())
        dist.ingest_all(net.collector.all_events())
        dist.build_all(workers=args.workers)
        graph = dist.merged_graph()
        stats = dist.last_build
        central = engine.build_graph(net.collector.all_events())
        distributed_rows = [
            ("distributed routers", stats.routers),
            ("boundary messages", stats.boundary_messages),
            ("boundary events shipped", stats.boundary_events),
            ("boundary bytes", stats.boundary_bytes),
            ("central-collector bytes", stats.central_bytes),
            (
                "byte savings vs central",
                f"{stats.central_bytes / max(1, stats.boundary_bytes):.1f}x",
            ),
            (
                "merge byte-identical to central",
                "yes" if graph.to_records() == central.to_records() else "NO",
            ),
        ]
    else:
        graph = engine.build_graph(
            net.collector.all_events(), parallel=args.workers
        )
    observable = {e.event_id for e in net.collector}
    score = score_inference(graph, net.ground_truth, observable_ids=observable)
    snapshot = DataPlaneSnapshot.from_live_network(net)
    classes = compute_equivalence_classes(snapshot)
    groups = PrefixGrouper().group(snapshot)
    print(
        format_table(
            ("metric", "value"),
            [
                ("captured I/O events", len(net.collector)),
                ("HBG edges inferred", graph.edge_count()),
                ("HBR inference precision", f"{score.precision:.3f}"),
                ("HBR inference recall", f"{score.recall:.3f}"),
                ("HBR inference f1", f"{score.f1:.3f}"),
                ("equivalence classes", len(classes)),
                ("prefixes", len(snapshot.all_prefixes())),
                (
                    "compression (prefixes/group)",
                    f"{PrefixGrouper.compression(groups):.1f}",
                ),
            ]
            + distributed_rows,
        )
    )
    if score.f1 < args.min_f1:
        print(
            f"FAIL: HBR inference f1 {score.f1:.3f} is below "
            f"--min-f1 {args.min_f1:.3f}"
        )
        return 1
    return 0


def _default_lint_baseline(paths: List[str]) -> Optional[str]:
    """Find a committed lint-baseline.json above the first lint path."""
    import os

    from repro.lint.baseline import BASELINE_FILENAME

    probe = os.path.abspath(paths[0] if paths else os.curdir)
    if os.path.isfile(probe):
        probe = os.path.dirname(probe)
    for _ in range(8):
        candidate = os.path.join(probe, BASELINE_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    return None


def _relativize_findings(findings, root: str):
    """Rewrite finding paths relative to ``root``.

    Baseline fingerprints embed the path, so they must not depend on
    the invocation directory; anchoring on the baseline file's own
    directory (the repo root, by convention) makes `repro lint` give
    identical fingerprints from any cwd.
    """
    import dataclasses
    import os

    rewritten = []
    for finding in findings:
        if finding.path.startswith("<"):
            rewritten.append(finding)
            continue
        relative = os.path.relpath(os.path.abspath(finding.path), root)
        rewritten.append(dataclasses.replace(finding, path=relative))
    return rewritten


def _changed_files(ref: str) -> Optional[List[str]]:
    """Python files differing from ``ref`` (plus untracked ones).

    Paths are returned absolute, anchored at the git toplevel —
    ``git diff --name-only`` and ``git ls-files --full-name`` both
    print toplevel-relative paths regardless of cwd, and the lint
    engine matches them against whatever form the lint paths used.
    Returns ``None`` when git is unavailable or the ref is unknown —
    the caller reports the error.
    """
    import os
    import subprocess

    def run(command: List[str]) -> Optional[str]:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout

    toplevel_out = run(["git", "rev-parse", "--show-toplevel"])
    if toplevel_out is None or not toplevel_out.strip():
        return None
    toplevel = toplevel_out.strip()

    files: List[str] = []
    for command in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "--full-name"],
    ):
        out = run(command)
        if out is None:
            return None
        files.extend(
            os.path.join(toplevel, line.strip())
            for line in out.splitlines()
            if line.strip().endswith(".py")
        )
    return sorted({os.path.normpath(f) for f in files})


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.lint import LintRunner, Severity, sort_findings
    from repro.lint import baseline as baseline_mod
    from repro.lint.cache import CACHE_DIR_NAME

    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]

    restrict_to = None
    if args.changed is not None:
        changed = _changed_files(args.changed)
        if changed is None:
            print(
                f"repro lint: cannot resolve --changed against "
                f"{args.changed!r} (not a git checkout, or unknown ref)",
                file=sys.stderr,
            )
            return 2
        restrict_to = set(changed)

    cache_dir = None
    if args.deep and not args.no_cache:
        if args.cache_dir:
            cache_dir = args.cache_dir
        else:
            # Default the cache next to the committed baseline (the
            # repo root, by convention) so every cwd shares one cache.
            anchor = args.baseline or _default_lint_baseline(paths)
            anchor_dir = (
                os.path.dirname(os.path.abspath(anchor))
                if anchor and anchor != "none"
                else os.curdir
            )
            cache_dir = os.path.join(anchor_dir, CACHE_DIR_NAME)

    try:
        result = LintRunner(deep=args.deep, cache_dir=cache_dir).run_paths(
            paths, restrict_to=restrict_to
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = (
            args.baseline
            if args.baseline not in (None, "none")
            else _default_lint_baseline(paths)
            or baseline_mod.BASELINE_FILENAME
        )
        anchored = _relativize_findings(
            result.findings, os.path.dirname(os.path.abspath(target))
        )
        count = baseline_mod.save(target, anchored)
        print(f"wrote {count} grandfathered finding(s) to {target}")
        return 0

    suppressed = 0
    stale: List[str] = []
    baseline_path: Optional[str] = None
    if args.baseline != "none":
        baseline_path = args.baseline or _default_lint_baseline(paths)
        if baseline_path is not None:
            try:
                allowed = baseline_mod.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"repro lint: bad baseline: {exc}", file=sys.stderr)
                return 2
            result.findings = _relativize_findings(
                result.findings,
                os.path.dirname(os.path.abspath(baseline_path)),
            )
            result.findings, suppressed, stale = baseline_mod.apply(
                result.findings, allowed
            )

    findings = sort_findings(result.findings)
    summary = {
        "files_scanned": result.files_scanned,
        "findings": len(findings),
        "by_severity": result.by_severity(),
        "suppressed_by_pragma": result.suppressed_by_pragma,
        "suppressed_by_baseline": suppressed,
        "baseline": baseline_path,
        "stale_baseline_entries": stale,
        "deep": bool(args.deep),
    }
    if args.deep:
        summary["analysis_cache"] = (
            "disabled"
            if result.cache_hit is None
            else ("hit" if result.cache_hit else "miss")
        )
        summary["analysis_seconds"] = round(result.analysis_seconds, 6)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "tool": "repro lint",
                    "version": package_version(),
                    "summary": summary,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        if findings:
            print(
                format_table(
                    ("severity", "rule", "location", "message"),
                    [
                        (str(f.severity), f.rule, f.location, f.message)
                        for f in findings
                    ],
                )
            )
            print()
            for finding in findings:
                if not finding.evidence:
                    continue
                print(f"call chain for {finding.rule} at {finding.location}:")
                for hop in finding.evidence:
                    print(f"    {hop}")
                print()
        print(
            f"{result.files_scanned} file(s) scanned, "
            f"{len(findings)} finding(s) "
            f"({result.suppressed_by_pragma} pragma-suppressed, "
            f"{suppressed} baselined)"
            + (
                f"; deep analysis {summary['analysis_cache']} "
                f"in {result.analysis_seconds:.2f}s"
                if args.deep
                else ""
            )
        )
        for fingerprint in stale:
            print(f"stale baseline entry (fixed? remove it): {fingerprint}")

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 1 if any(f.severity >= threshold for f in findings) else 0


#: Scenarios runnable under ``repro stats`` (demos + the audit tour).
_STATS_SCENARIOS = dict(_DEMOS)
_STATS_SCENARIOS["audit"] = _cmd_audit


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one scenario with observability on; dump the metrics report."""
    registry, tracer = obs.enable()
    try:
        runner = _STATS_SCENARIOS[args.scenario]
        scenario_output = io.StringIO()
        wall_started = time.perf_counter()
        with tracer.span(f"scenario.{args.scenario}"):
            with contextlib.redirect_stdout(scenario_output):
                scenario_rc = runner(args)
        wall_seconds = time.perf_counter() - wall_started
        if args.verbose:
            sys.stderr.write(scenario_output.getvalue())
        meta = {
            "tool": "repro stats",
            "version": package_version(),
            "scenario": args.scenario,
            "seed": args.seed,
            "scenario_exit_code": scenario_rc,
            "wall_seconds": round(wall_seconds, 6),
        }
        if args.format == "json":
            rendered = render_json(registry, tracer, meta=meta)
        else:
            rendered = RENDERERS[args.format](registry, tracer)
        if args.output:
            atomic_write_text(args.output, rendered + "\n")
            print(f"wrote {args.format} metrics report to {args.output}")
        else:
            print(rendered)
        if args.require:
            required = [s.strip() for s in args.require.split(",") if s.strip()]
            document = registry_to_dict(registry, tracer)
            missing = missing_sections(document, required)
            if missing:
                print(
                    "FAIL: required metric section(s) missing or empty: "
                    + ", ".join(missing),
                    file=sys.stderr,
                )
                return 1
        return scenario_rc
    finally:
        obs.disable()


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a differential-oracle fuzz campaign (or replay an artifact)."""
    import json
    from pathlib import Path

    from repro.testkit import (
        FuzzRunner,
        artifact_matches_expectation,
        load_artifact,
    )
    from repro.testkit.oracles import ORACLES

    if args.replay:
        try:
            artifact = load_artifact(Path(args.replay))
            verdict = artifact_matches_expectation(artifact)
        except ValueError as exc:
            print(f"repro fuzz: {exc}", file=sys.stderr)
            return 2
        except AssertionError as exc:
            print(f"repro fuzz: replay mismatch: {exc}", file=sys.stderr)
            return 1
        print(
            f"replayed {args.replay}: oracle {artifact.oracle} is "
            f"{'passing' if verdict.ok else 'failing'}, as recorded "
            f"(expect={artifact.expect})"
        )
        return 0

    oracle_names = None
    if args.oracle:
        oracle_names = [
            name
            for chunk in args.oracle
            for name in chunk.split(",")
            if name
        ]
        unknown = sorted(set(oracle_names) - set(ORACLES))
        if unknown:
            print(
                f"repro fuzz: unknown oracle(s): {', '.join(unknown)} "
                f"(known: {', '.join(ORACLES)})",
                file=sys.stderr,
            )
            return 2

    artifacts_dir = (
        None if args.artifacts_dir == "none" else Path(args.artifacts_dir)
    )
    # Instrument even without the global --metrics flag, so the run
    # always exercises the obs layer; only print what was asked for.
    was_enabled = obs.enabled()
    if not was_enabled:
        obs.enable()
    try:
        runner = FuzzRunner(
            oracle_names=oracle_names,
            artifacts_dir=artifacts_dir,
            shrink_failures=not args.no_shrink,
        )
        report = runner.run(
            seed=args.seed, cases=args.cases, minutes=args.minutes
        )
    finally:
        if not was_enabled:
            obs.disable()

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        failures = report.failures
        if failures:
            rows = []
            for result in failures:
                for verdict in result.verdicts:
                    if verdict.ok:
                        continue
                    events = str(result.events)
                    if result.shrink is not None:
                        events += f"→{result.shrink['shrunk_events']}"
                    rows.append(
                        (
                            str(result.index),
                            verdict.oracle,
                            events,
                            result.artifact_path or "-",
                            verdict.detail[:90],
                        )
                    )
            print(
                format_table(
                    ("case", "oracle", "events", "artifact", "detail"), rows
                )
            )
            print()
        print(
            f"fuzz seed={report.seed}: {report.cases} case(s), "
            f"{len(failures)} failing, {report.budget_skipped} skipped "
            f"(budget), oracles: {', '.join(report.oracles)}"
        )
        print(f"campaign digest: {report.campaign_digest}")

    if report.failures and args.fail_on_finding:
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Verify a generated run: batch, incremental, or differential."""
    from repro.capture.io_events import IOKind
    from repro.hbr.inference import InferenceEngine
    from repro.scenarios.generators import (
        build_random_network,
        churn_workload,
        external_prefixes,
    )
    from repro.snapshot.base import DataPlaneSnapshot, VerifierView
    from repro.snapshot.consistent import ConsistentSnapshotter
    from repro.verify.incremental import (
        IncrementalVerifier,
        incremental_engine,
    )
    from repro.verify.policy import (
        BlackholeFreedomPolicy,
        LoopFreedomPolicy,
    )

    net, specs = build_random_network(
        args.routers, uplinks=args.uplinks, seed=args.seed
    )
    net.start()
    churn_workload(
        net,
        specs,
        external_prefixes(args.prefixes),
        events=args.events,
        start=2.0,
        seed=args.seed,
    )
    net.run(60)
    internal = net.topology.internal_routers()
    lags = {}
    if args.straggler_lag > 0 and internal:
        lags[internal[0]] = args.straggler_lag
    view = VerifierView(net.collector, lags=lags)
    events = net.collector.all_events()
    policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())
    drained = net.sim.now + max(lags.values(), default=0.0) + 1e-6

    incremental = None
    if args.incremental or args.differential:
        engine = incremental_engine()
        streaming = engine.streaming()
        incremental = IncrementalVerifier(
            internal,
            topology=net.topology,
            policies=policies,
            view=view,
            engine=engine,
        ).attach(streaming)
        batch_engine = InferenceEngine()
        mismatches = 0
        fed = []
        started = time.perf_counter()
        for event in sorted(
            events, key=lambda e: (view.arrival_time(e), e.event_id)
        ):
            streaming.observe(event)
            fed.append(event)
            if not args.differential:
                continue
            if event.kind is not IOKind.FIB_UPDATE or event.prefix is None:
                continue
            inc = incremental.last_report(event.prefix)
            batch = ConsistentSnapshotter(view, internal).check(
                batch_engine.build_graph(fed),
                fed,
                prefix=event.prefix,
                at=incremental.clock,
            )
            batch_violations = []
            batch_snapshot = DataPlaneSnapshot.from_fib_events(fed)
            for policy in policies:
                batch_violations.extend(
                    policy.check(batch_snapshot, net.topology)
                )
            if (inc.consistent, inc.missing_routers) != (
                batch.consistent,
                batch.missing_routers,
            ) or incremental.violations() != batch_violations:
                mismatches += 1
                print(
                    f"MISMATCH after event {event.event_id} "
                    f"({event.router} {event.prefix}): incremental "
                    f"({inc.consistent}, {sorted(inc.missing_routers)}, "
                    f"{len(incremental.violations())} violation(s)) vs "
                    f"batch ({batch.consistent}, "
                    f"{sorted(batch.missing_routers)}, "
                    f"{len(batch_violations)} violation(s))"
                )
        wall = time.perf_counter() - started
        per_update = incremental.verify_seconds_total / max(
            incremental.deltas_applied, 1
        )
        print(
            f"incremental: {len(events)} event(s) streamed, "
            f"{incremental.deltas_applied} FIB delta(s) verified, "
            f"{incremental.atoms.atom_count()} atom(s), "
            f"{incremental.checks_run} §5 check(s)"
        )
        print(
            f"incremental: {per_update * 1e6:.0f} µs/update "
            f"(feed wall {wall:.2f}s), "
            f"{len(incremental.violations())} final violation(s)"
        )
        if args.differential:
            print(
                f"differential: {incremental.deltas_applied} delta(s) "
                f"compared against batch, {mismatches} mismatch(es)"
            )
            if mismatches:
                return 1
        if args.incremental and not args.differential:
            return 0

    if not args.incremental:
        snapshotter = ConsistentSnapshotter(view, internal)
        started = time.perf_counter()
        snapshot, report = snapshotter.snapshot(drained)
        wall = time.perf_counter() - started
        violations = []
        for policy in policies:
            violations.extend(policy.check(snapshot, net.topology))
        print(
            f"batch: snapshot at {drained:.3f}s is "
            f"{'consistent' if report.consistent else 'INCONSISTENT'} "
            f"({report.steps} walk step(s), {wall * 1000:.1f} ms), "
            f"{len(violations)} violation(s)"
        )
        for violation in violations[:10]:
            print(f"  {violation}")
        if not report.consistent:
            for reason in report.reasons[:5]:
                print(f"  defer: {reason}")
    return 0


#: Scenarios runnable under ``repro trace``.
_TRACE_SCENARIOS = ("fig1", "fig2", "fig5", "pipeline")


def _run_trace_scenario(
    scenario: str,
    seed: int = 0,
    capacity: int = 4096,
    overflow: str = "drop-oldest",
):
    """Run one scenario with the flight recorder on; returns
    ``(graph, recorder)`` — the HBG plus the recorded event ring.

    Shared by ``repro trace`` and the test suite so both exercise the
    exact same capture path.
    """
    from repro.hbr.inference import InferenceEngine

    with obs.recording(capacity=capacity, overflow=overflow) as recorder:
        if scenario == "pipeline":
            from repro.core.pipeline import (
                IntegratedControlPlane,
                PipelineMode,
            )
            from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
            from repro.scenarios.paper_net import P, paper_policy
            from repro.verify.policy import LoopFreedomPolicy

            net = Fig2Scenario(seed=seed).run_baseline()
            pipeline = IntegratedControlPlane(
                net,
                [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
                mode=PipelineMode.REPAIR,
            ).arm()
            net.apply_config_change(bad_lp_change())
            net.run(120)
            graph = pipeline.hbg
        elif scenario == "fig1":
            from repro.scenarios.fig1 import Fig1Scenario

            net = Fig1Scenario(seed=seed).run_fig1b()
            graph = InferenceEngine().build_graph(net.collector.all_events())
        elif scenario == "fig2":
            from repro.scenarios.fig2 import Fig2Scenario

            net = Fig2Scenario(seed=seed).run_fig2a()
            graph = InferenceEngine().build_graph(net.collector.all_events())
        elif scenario == "fig5":
            from repro.scenarios.fig5 import Fig5Scenario

            net = Fig5Scenario(seed=seed).run_localpref_change()
            graph = InferenceEngine().build_graph(net.collector.all_events())
        else:
            raise ValueError(f"unknown trace scenario {scenario!r}")
    return graph, recorder


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record one scenario and export its causal trace."""
    import json

    from repro.obs.trace import attribution as attribution_mod
    from repro.obs.trace import export as trace_export

    try:
        graph, recorder = _run_trace_scenario(
            args.scenario,
            seed=args.seed,
            capacity=args.ring_size,
            overflow=args.overflow,
        )
    except ValueError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2

    if args.format == "chrome":
        document = trace_export.chrome_trace(
            graph, recorder, min_confidence=args.min_confidence
        )
        problems = trace_export.validate_chrome_trace(document)
        rendered = json.dumps(document, indent=2, sort_keys=True)
    elif args.format == "otlp":
        document = trace_export.otlp_spans(
            graph, recorder, min_confidence=args.min_confidence
        )
        problems = trace_export.validate_otlp_spans(document)
        rendered = json.dumps(document, indent=2, sort_keys=True)
    else:
        problems = []
        rendered = trace_export.text_timeline(
            graph, recorder, min_confidence=args.min_confidence
        ).rstrip("\n")

    if problems:
        for problem in problems:
            print(f"repro trace: invalid export: {problem}", file=sys.stderr)
        return 1

    if args.output:
        atomic_write_text(args.output, rendered + "\n")
        print(
            f"wrote {args.format} trace for scenario {args.scenario!r} "
            f"to {args.output} ({len(graph.events())} HBG events, "
            f"{len(recorder)} recorded, {recorder.dropped} dropped)"
        )
    else:
        print(rendered)

    if args.attribute:
        report = attribution_mod.attribute_latency(
            graph, min_confidence=args.min_confidence
        )
        lines = report.table_lines()
        if args.output:
            print()
            print("\n".join(lines))
        else:
            print("\n".join(lines), file=sys.stderr)
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Serve /metrics, /healthz, /resources.json as a live endpoint."""
    import json

    from repro.obs.health import (
        DEFAULT_RULES,
        HealthEngine,
        HealthRuleError,
        parse_rule,
    )
    from repro.obs.serve import MetricsServer

    # User-supplied specs override same-named defaults, so a deploy can
    # relax (or tighten) a built-in rule without forking the whole set.
    by_name = {rule.name: rule for rule in DEFAULT_RULES}
    for spec in args.health_rule or ():
        try:
            rule = parse_rule(spec)
        except HealthRuleError as exc:
            print(f"repro serve-metrics: {exc}", file=sys.stderr)
            return 2
        by_name[rule.name] = rule
    rules = list(by_name.values())

    # Treat SIGTERM like Ctrl-C so `kill` from a supervisor (or a CI
    # cleanup step) still takes the graceful path: server shutdown,
    # profile written, health-based exit code.  Shells start `&`-jobs
    # with SIGINT ignored, so TERM is the only signal a pipeline can
    # rely on.  signal.signal only works from the main thread; when
    # invoked elsewhere (tests), fall through without a handler.
    # One-shot: supervisors that signal the whole process group (GNU
    # timeout, docker stop) deliver TERM more than once, and a repeat
    # mid-cleanup would abort the shutdown it asked for.
    def _on_sigterm(signum: int, frame: object) -> None:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass

    obs.enable()
    obs.enable_ledger()
    obs.enable_recording()
    if args.verdict_ledger:
        obs.enable_verdicts(path=args.verdict_ledger)
    if args.profile:
        obs.enable_profiling()
    try:
        # Warm the metrics stream with one scenario run so the very
        # first scrape already has pipeline data behind it.
        warmup_output = io.StringIO()
        if args.scenario == "fuzz":
            from repro.testkit import FuzzRunner

            runner = FuzzRunner(artifacts_dir=None, shrink_failures=False)
            with contextlib.redirect_stdout(warmup_output):
                runner.run(seed=args.seed, cases=args.cases)
        elif args.scenario != "none":
            with contextlib.redirect_stdout(warmup_output):
                _STATS_SCENARIOS[args.scenario](args)
        if args.verdict_ledger:
            # One planted-violation replay guarantees the detection /
            # exposure SLIs have samples and the ledger holds both a
            # failing and a recovering verdict before the first scrape.
            with contextlib.redirect_stdout(warmup_output):
                _run_continuous_replay("fig2", seed=args.seed, repair=True)
            obs.get_verdicts().flush()
        obs.get_ledger().refresh()

        engine = HealthEngine(rules=rules)
        try:
            server = MetricsServer(
                host=args.host, port=args.port, engine=engine
            )
        except OSError as exc:
            print(
                f"repro serve-metrics: cannot bind "
                f"{args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        server.start()
        print(
            f"serving on {server.url} — /metrics /healthz "
            f"/resources.json /verdicts.json /profile.speedscope.json "
            f"(scenario={args.scenario}, tick every {args.interval:g}s"
            + (f", stopping after {args.duration:g}s)" if args.duration else ")")
        )
        deadline = (
            time.monotonic() + args.duration if args.duration > 0 else None
        )
        healthy = None
        try:
            while True:
                ok = server.tick()
                if ok is not healthy:
                    verdict = engine.last
                    failing = (
                        ", ".join(r.rule.name for r in verdict.failing())
                        if verdict is not None
                        else ""
                    )
                    print(
                        f"health: {'ok' if ok else 'FAILING'}"
                        + (f" ({failing})" if failing else "")
                    )
                    healthy = ok
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    break
                wait = args.interval
                if deadline is not None:
                    wait = min(wait, max(deadline - now, 0.0))
                time.sleep(wait)
        except KeyboardInterrupt:
            print("\ninterrupted; shutting down")
        finally:
            server.stop()
        if args.profile and args.profile_output:
            profiler = obs.get_profiler()
            profiler.stop()
            with open(args.profile_output, "w") as handle:
                json.dump(profiler.speedscope(), handle, sort_keys=True)
            print(
                f"wrote speedscope profile to {args.profile_output} "
                f"({profiler.samples_total} samples)"
            )
        return 0 if engine.healthy() else 1
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        obs.disable_profiling()
        obs.disable_verdicts()
        obs.disable_recording()
        obs.disable_ledger()
        obs.disable()


#: Scenarios runnable under ``repro watch`` (continuous replay).
_WATCH_SCENARIOS = ("fig1", "fig2", "fig5")


def _run_continuous_replay(
    scenario: str,
    seed: int = 0,
    repair: bool = True,
    progress=None,
):
    """Replay one scenario through the streaming verifier with the
    continuous monitor attached; returns ``(net, verifier, monitor)``.

    The monitor subscribes *before* the verifier so watermarks and
    first-suspect timestamps are updated before each verdict fires —
    detection latency is measured from the FIB update that made a
    prefix suspect, not from the verdict that judged it.  When
    ``repair`` is set and the replay ends with open violations, the
    root cause is traced and rolled back so the ledger also records
    the recovery (exposure windows close).
    """
    from repro.obs.continuous import ContinuousMonitor
    from repro.snapshot.base import VerifierView
    from repro.verify.incremental import (
        IncrementalVerifier,
        incremental_engine,
    )
    from repro.verify.policy import (
        BlackholeFreedomPolicy,
        LoopFreedomPolicy,
    )

    if scenario == "fig2":
        from repro.scenarios.fig2 import Fig2Scenario
        from repro.scenarios.paper_net import P, paper_policy

        net = Fig2Scenario(seed=seed).run_fig2a()
        policies = [paper_policy(), LoopFreedomPolicy(prefixes=[P])]
    elif scenario == "fig1":
        from repro.scenarios.fig1 import Fig1Scenario

        net = Fig1Scenario(seed=seed).run_fig1b()
        policies = [LoopFreedomPolicy(), BlackholeFreedomPolicy()]
    elif scenario == "fig5":
        from repro.scenarios.fig5 import Fig5Scenario

        net = Fig5Scenario(seed=seed).run_localpref_change()
        policies = [LoopFreedomPolicy(), BlackholeFreedomPolicy()]
    else:
        raise ValueError(f"unknown watch scenario {scenario!r}")

    internal = net.topology.internal_routers()
    view = VerifierView(net.collector)
    engine = incremental_engine()
    streaming = engine.streaming()
    monitor = ContinuousMonitor(view=view).attach(streaming)
    verifier = IncrementalVerifier(
        internal,
        topology=net.topology,
        policies=policies,
        view=view,
        engine=engine,
    ).attach(streaming)
    monitor.atoms = verifier.atoms
    verdicts = obs.get_verdicts()
    if verdicts.enabled:
        monitor.bind_ledger(verdicts)

    ordered = sorted(
        net.collector.all_events(),
        key=lambda e: (view.arrival_time(e), e.event_id),
    )
    for index, event in enumerate(ordered, start=1):
        streaming.observe(event)
        if progress is not None:
            progress(index, len(ordered))

    if repair and verifier.violations():
        from repro.capture.io_events import IOKind
        from repro.repair.provenance import ProvenanceTracer
        from repro.repair.rollback import RepairEngine
        from repro.verify.verifier import DataPlaneVerifier

        violated = {
            v.prefix for v in verifier.violations() if v.prefix is not None
        }
        # Only FIB churn after the most recent config change is suspect:
        # tracing the baseline announcements too would let the repair
        # engine revert legitimate steady state.
        cutoff = max(
            (
                e.timestamp
                for e in net.collector.all_events()
                if e.kind is IOKind.CONFIG_CHANGE
            ),
            default=0.0,
        )
        fibs = [
            e
            for e in net.collector.all_events()
            if e.kind is IOKind.FIB_UPDATE
            and e.prefix in violated
            and e.timestamp > cutoff
        ]
        if fibs:
            provenance = ProvenanceTracer(streaming.graph).trace_many(
                [e.event_id for e in fibs]
            )
            RepairEngine(
                net, DataPlaneVerifier(net.topology, policies)
            ).repair(provenance, settle=30.0)
            # Stream the recovery too: the rollback emitted fresh
            # config/FIB events, and feeding them through the same
            # verifier flips the per-router verdicts back to PASS.
            fed = {e.event_id for e in ordered}
            tail = sorted(
                (
                    e
                    for e in net.collector.all_events()
                    if e.event_id not in fed
                ),
                key=lambda e: (view.arrival_time(e), e.event_id),
            )
            for event in tail:
                streaming.observe(event)
    return net, verifier, monitor


def _cmd_watch(args: argparse.Namespace) -> int:
    """Replay a scenario and render the continuous-verification table."""
    from repro.obs.continuous import render_watch_table

    obs.enable()
    obs.enable_verdicts(path=args.verdict_ledger)
    try:

        def _redraw(index: int, total: int) -> None:
            if args.refresh <= 0 or index % args.refresh:
                return
            sys.stdout.write("\x1b[2J\x1b[H")
            print(render_watch_table(obs.get_registry(), obs.get_verdicts()))
            print(f"... replayed {index}/{total} event(s)")

        try:
            net, verifier, monitor = _run_continuous_replay(
                args.scenario,
                seed=args.seed,
                repair=not args.no_repair,
                progress=_redraw,
            )
        except ValueError as exc:
            print(f"repro watch: {exc}", file=sys.stderr)
            return 2
        verdicts = obs.get_verdicts()
        verdicts.flush()
        if args.refresh > 0:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_watch_table(obs.get_registry(), verdicts))
        exposed = monitor.exposed_prefixes()
        print(
            f"replayed {monitor.tracker.events_seen} event(s) "
            f"(scenario={args.scenario}, seed={args.seed}): "
            f"{len(verdicts)} verdict(s), "
            f"{monitor.detections} detection(s), "
            f"{monitor.exposures_closed} exposure(s) closed, "
            f"{len(exposed)} still exposed"
        )
        if args.verdict_ledger:
            print(
                f"wrote verdict ledger ({len(verdicts)} record(s)) "
                f"to {args.verdict_ledger}"
            )
        return 1 if exposed else 0
    finally:
        obs.disable_verdicts()
        obs.disable()


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two BENCH_*.json reports; exit nonzero on regression."""
    import json

    from repro.obs import benchdiff

    try:
        old = benchdiff.load_report(args.old)
        new = benchdiff.load_report(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro bench diff: {exc}", file=sys.stderr)
        return 2

    diff = benchdiff.diff_reports(
        old,
        new,
        threshold_pct=args.threshold,
        min_abs=args.min_abs,
        min_abs_bytes=args.min_abs_bytes,
    )
    if args.format == "json":
        document = {
            "tool": "repro bench diff",
            "version": package_version(),
            "old": args.old,
            "new": args.new,
            **diff.to_dict(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print("\n".join(diff.table_lines()))
    return benchdiff.exit_code(diff, args.fail_on)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrating Verification and Repair into the Control Plane "
            "(HotNets 2017) — reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()}",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print a metrics report afterwards",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one of the paper's scenarios")
    demo.add_argument("scenario", choices=sorted(_DEMOS))
    demo.set_defaults(func=_cmd_demo)

    audit = sub.add_parser("audit", help="toolbox tour on a random network")
    audit.add_argument("--routers", type=int, default=8)
    audit.add_argument("--uplinks", type=int, default=2)
    audit.add_argument("--prefixes", type=int, default=6)
    audit.add_argument("--events", type=int, default=12)
    audit.add_argument(
        "--min-f1",
        type=float,
        default=0.0,
        help="exit nonzero if HBR inference f1 falls below this (CI gate)",
    )
    audit.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="build the HBG with N sharded worker processes "
        "(default: serial indexed build)",
    )
    audit.add_argument(
        "--legacy-scan",
        action="store_true",
        help="use the pre-index window-rescan inference path "
        "(differential-testing reference; much slower)",
    )
    audit.add_argument(
        "--distributed",
        action="store_true",
        help="build the HBG distributedly (per-router subgraphs + "
        "boundary-summary exchange; --workers sizes the fork pool) "
        "and report boundary traffic vs the central baseline",
    )
    audit.set_defaults(func=_cmd_audit)

    lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis pass "
        "(DET/LAY/OBS/HYG/PERF rules; --deep adds DET100/CONC00x)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="report format (default: table)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings ('none' disables; "
            "default: nearest lint-baseline.json above the lint paths)"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="exit nonzero if any finding is at/above this severity "
        "(default: error)",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program pass (call graph + dataflow: "
        "DET100 determinism taint, CONC001-003 fork/thread safety) "
        "with call-chain evidence per finding",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="restrict single-file rules to files differing from the "
        "git ref (default ref: HEAD); whole-program rules still see "
        "the full call graph",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="deep-analysis cache directory (default: .repro-lint-cache "
        "next to the baseline file)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the deep-analysis cache for this run",
    )
    lint.set_defaults(func=_cmd_lint)

    stats = sub.add_parser(
        "stats",
        help="run a scenario with metrics enabled and dump the report",
    )
    stats.add_argument(
        "--scenario",
        choices=sorted(_STATS_SCENARIOS),
        default="pipeline",
        help="which scenario to measure (default: pipeline)",
    )
    stats.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="table",
        help="report format (default: table)",
    )
    stats.add_argument(
        "--output", default=None, help="write the report to this file"
    )
    stats.add_argument(
        "--require",
        default=None,
        metavar="SECTIONS",
        help=(
            "comma-separated metric sections that must be non-empty "
            "(e.g. capture,inference,snapshot,verify,repair); exits "
            "nonzero otherwise"
        ),
    )
    stats.add_argument(
        "--verbose",
        action="store_true",
        help="also show the scenario's own output (on stderr)",
    )
    # The audit scenario's knobs, so `stats --scenario audit` works.
    stats.add_argument("--routers", type=int, default=8)
    stats.add_argument("--uplinks", type=int, default=2)
    stats.add_argument("--prefixes", type=int, default=6)
    stats.add_argument("--events", type=int, default=12)
    stats.add_argument("--min-f1", type=float, default=0.0)
    stats.add_argument("--workers", type=int, default=None)
    stats.add_argument("--legacy-scan", action="store_true")
    stats.set_defaults(func=_cmd_stats)

    verify = sub.add_parser(
        "verify",
        help="verify a generated run (batch, --incremental, --differential)",
    )
    verify.add_argument(
        "--routers", type=int, default=8, help="network size (default: 8)"
    )
    verify.add_argument(
        "--uplinks", type=int, default=2, help="external uplinks (default: 2)"
    )
    verify.add_argument(
        "--prefixes",
        type=int,
        default=4,
        help="external prefixes in the workload (default: 4)",
    )
    verify.add_argument(
        "--events",
        type=int,
        default=10,
        help="churn events in the workload (default: 10)",
    )
    verify.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    verify.add_argument(
        "--straggler-lag",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="log-delivery lag for one router (exercises arrival-order "
        "feeds; default: 0)",
    )
    verify.add_argument(
        "--incremental",
        action="store_true",
        help="stream FIB deltas through the atom-based incremental "
        "verifier instead of one batch snapshot",
    )
    verify.add_argument(
        "--differential",
        action="store_true",
        help="run incremental AND re-derive the batch verdict after "
        "every FIB delta; exit 1 on any divergence",
    )
    verify.set_defaults(func=_cmd_verify)

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the pipeline with differential oracles (repro.testkit)",
    )
    fuzz.add_argument(
        "--cases",
        type=int,
        default=25,
        help="number of fuzz cases to run (default: 25)",
    )
    # Also accepted after the subcommand (CI invokes `fuzz --seed N`).
    fuzz.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help=argparse.SUPPRESS
    )
    fuzz.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "oracle(s) to run — repeatable or comma-separated "
            "(default: all of snapshot-consistency, hbg-distributed, "
            "hbg-indexed-equivalence, hbg-distributed-equivalence, "
            "whatif-replay, "
            "provenance-rollback, verify-incremental-equivalence, "
            "replay-determinism)"
        ),
    )
    fuzz.add_argument(
        "--minutes",
        type=float,
        default=None,
        help="wall-clock budget; remaining cases are skipped once spent",
    )
    fuzz.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="report format (default: table)",
    )
    fuzz.add_argument(
        "--fail-on-finding",
        action="store_true",
        help="exit nonzero if any oracle fails (CI gate)",
    )
    fuzz.add_argument(
        "--artifacts-dir",
        default="tests/fixtures/fuzz_regressions",
        metavar="DIR",
        help=(
            "where to write shrunk repro artifacts for failures "
            "('none' disables; default: tests/fixtures/fuzz_regressions)"
        ),
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing cases without delta-debugging them first",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay one artifact file instead of fuzzing",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    trace = sub.add_parser(
        "trace",
        help="record a scenario and export its causal trace "
        "(Perfetto/OTLP/text)",
    )
    trace.add_argument(
        "--scenario",
        choices=_TRACE_SCENARIOS,
        default="pipeline",
        help="which scenario to record (default: pipeline)",
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "otlp", "table"),
        default="chrome",
        help=(
            "chrome = trace-event JSON (open in Perfetto), otlp = span "
            "tree JSON, table = per-router text timeline (default: chrome)"
        ),
    )
    trace.add_argument(
        "--attribute",
        action="store_true",
        help="also run latency attribution (per-HBR-rule hop histograms)",
    )
    trace.add_argument(
        "--min-confidence",
        type=float,
        default=0.0,
        help="ignore HBG edges below this confidence (default: 0.0)",
    )
    trace.add_argument(
        "--output", default=None, help="write the export to this file"
    )
    trace.add_argument(
        "--ring-size",
        type=int,
        default=4096,
        help="flight-recorder ring capacity in events (default: 4096)",
    )
    trace.add_argument(
        "--overflow",
        choices=("drop-oldest", "drop-newest"),
        default="drop-oldest",
        help="ring overflow policy (default: drop-oldest)",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve-metrics",
        help="serve /metrics, /healthz, /resources.json over HTTP",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=9464,
        help="bind port; 0 asks the OS for a free one (default: 9464)",
    )
    serve.add_argument(
        "--scenario",
        choices=sorted(_STATS_SCENARIOS) + ["fuzz", "none"],
        default="pipeline",
        help=(
            "warmup scenario populating the metrics stream before "
            "serving; 'fuzz' runs a small testkit campaign, 'none' "
            "skips warmup (default: pipeline)"
        ),
    )
    serve.add_argument(
        "--cases",
        type=int,
        default=5,
        help="fuzz cases when --scenario fuzz (default: 5)",
    )
    serve.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="seconds between health-engine ticks (default: 5)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="stop after this many seconds; 0 = run until interrupted",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="run the deterministic sampling profiler while serving",
    )
    serve.add_argument(
        "--profile-output",
        default=None,
        metavar="FILE",
        help="write the speedscope profile here on shutdown",
    )
    serve.add_argument(
        "--health-rule",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "extra health rule, repeatable — e.g. "
            "'mem: resource.bytes_total <= 268435456' or "
            "'p99: inference.build_graph_seconds.p99 <= 0.5'"
        ),
    )
    serve.add_argument(
        "--verdict-ledger",
        default=None,
        metavar="FILE",
        help=(
            "enable the verdict ledger, persist it to FILE, and run a "
            "planted-violation replay during warmup so /verdicts.json "
            "and the detection/exposure SLIs have data"
        ),
    )
    # The audit scenario's knobs, mirroring `repro stats`.
    serve.add_argument("--routers", type=int, default=8)
    serve.add_argument("--uplinks", type=int, default=2)
    serve.add_argument("--prefixes", type=int, default=6)
    serve.add_argument("--events", type=int, default=12)
    serve.add_argument("--min-f1", type=float, default=0.0)
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--legacy-scan", action="store_true")
    serve.set_defaults(func=_cmd_serve_metrics)

    watch = sub.add_parser(
        "watch",
        help=(
            "replay a scenario through the streaming verifier and "
            "render the continuous-verification status table"
        ),
    )
    watch.add_argument(
        "--scenario",
        choices=_WATCH_SCENARIOS,
        default="fig2",
        help=(
            "scenario to replay; fig2 plants the paper's §2 violation "
            "(default: fig2)"
        ),
    )
    watch.add_argument(
        "--verdict-ledger",
        default=None,
        metavar="FILE",
        help="persist the verdict ledger (repro-verdicts/v1 JSONL) here",
    )
    watch.add_argument(
        "--refresh",
        type=int,
        default=0,
        metavar="N",
        help=(
            "redraw the table every N replayed events "
            "(default: 0 = render once at the end)"
        ),
    )
    watch.add_argument(
        "--no-repair",
        action="store_true",
        help="skip root-cause rollback; exposures stay open on exit",
    )
    watch.set_defaults(func=_cmd_watch)

    from repro.obs.benchdiff import (
        DEFAULT_MIN_ABS,
        DEFAULT_MIN_ABS_BYTES,
        DEFAULT_THRESHOLD_PCT,
        FAIL_ON_CHOICES,
    )

    bench = sub.add_parser(
        "bench", help="benchmark-report tooling (BENCH_*.json)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_diff = bench_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json reports; exit nonzero on regression",
    )
    bench_diff.add_argument("old", help="baseline BENCH_*.json")
    bench_diff.add_argument("new", help="candidate BENCH_*.json")
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help=(
            "relative slowdown (percent) on a seconds/latency key that "
            f"counts as a regression (default: {DEFAULT_THRESHOLD_PCT:g})"
        ),
    )
    bench_diff.add_argument(
        "--min-abs",
        type=float,
        default=DEFAULT_MIN_ABS,
        metavar="SECONDS",
        help=(
            "absolute noise floor a time delta must also exceed "
            f"(default: {DEFAULT_MIN_ABS:g})"
        ),
    )
    bench_diff.add_argument(
        "--min-abs-bytes",
        type=float,
        default=DEFAULT_MIN_ABS_BYTES,
        metavar="BYTES",
        help=(
            "absolute noise floor a *bytes* delta must also exceed "
            f"(default: {DEFAULT_MIN_ABS_BYTES:g})"
        ),
    )
    bench_diff.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="report format (default: table)",
    )
    bench_diff.add_argument(
        "--fail-on",
        choices=FAIL_ON_CHOICES,
        default="regression",
        help=(
            "exit nonzero on: regression (default), changed (any "
            "difference at all), or never (report only)"
        ),
    )
    bench_diff.set_defaults(func=_cmd_bench_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_metrics = getattr(args, "metrics", False) and args.command != "stats"
    if wants_metrics:
        registry, tracer = obs.enable()
    try:
        rc = args.func(args)
        if wants_metrics:
            print("\n===== metrics =====")
            print(obs.export.render_table(registry, tracer))
        return rc
    finally:
        if wants_metrics:
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
