"""repro.lint — AST-based static analysis for this repository.

The paper's happens-before inference is only trustworthy if the
trace-producing layers are strictly deterministic (§4.2); this
package machine-checks that property — plus the architectural
layering, instrumentation, and concurrency invariants — on every
commit, via ``repro lint`` and the CI lint jobs.

Two analysis modes:

* **fast** (default) — single-pass per-file syntactic rules plus the
  cross-file import graph.  Runs on every edit.
* **deep** (``repro lint --deep``) — additionally builds a
  whole-program symbol table and call graph
  (:mod:`repro.lint.callgraph`), runs fixpoint dataflow analyses
  (:mod:`repro.lint.dataflow`), and caches results by content hash
  (:mod:`repro.lint.cache`) so warm runs cost only the fast pass.

Rule families (full catalogue in ``docs/STATIC_ANALYSIS.md``):

* **DET** — determinism: no wall clocks or global RNG in the
  simulator/capture/HBR layers; set iteration must be sorted.
  **DET100** (deep) extends this interprocedurally: a function in a
  deterministic package is flagged if any call chain reaches a
  nondeterministic sink, with the chain as evidence.
* **CONC** (deep) — concurrency: **CONC001** fork-safety of the
  sharded HBG build (worker-reachable code must not mutate
  process-global state), **CONC002** thread-safety of state reachable
  from the live-metrics HTTP handler, **CONC003** module globals
  written from multiple pipeline stages.
* **LAY** — layering: imports must follow
  ``net → capture → protocols → hbr → {snapshot, verify} → repair →
  cli``; package import cycles are fatal.
* **OBS** — instrumentation: pipeline-stage entry points must carry
  a :mod:`repro.obs` span or metric.
* **HYG** — hygiene: mutable default args, bare ``except``,
  ``assert`` in shipped source, unused suppression pragmas (HYG004).

Programmatic use::

    from repro.lint import LintRunner, sort_findings

    result = LintRunner(deep=True).run_paths(["src/repro"])
    for finding in sort_findings(result.findings):
        print(finding.location, finding.rule, finding.message)
        for hop in finding.evidence:
            print("   ", hop)
"""

from repro.lint import baseline  # noqa: F401  (re-exported submodule)
from repro.lint.core import (  # noqa: F401
    RULE_REGISTRY,
    FileContext,
    Finding,
    Rule,
    Severity,
    default_rules,
    register,
)
from repro.lint.engine import (  # noqa: F401
    LintResult,
    LintRunner,
    discover_files,
    module_name_for,
    sort_findings,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "LintRunner",
    "Rule",
    "RULE_REGISTRY",
    "Severity",
    "baseline",
    "default_rules",
    "discover_files",
    "module_name_for",
    "register",
    "sort_findings",
]
