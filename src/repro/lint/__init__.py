"""repro.lint — AST-based static analysis for this repository.

The paper's happens-before inference is only trustworthy if the
trace-producing layers are strictly deterministic (§4.2); this
package machine-checks that property — plus the architectural
layering and instrumentation invariants — on every commit, via
``repro lint`` and the CI lint job.

Rule families (full catalogue in ``docs/STATIC_ANALYSIS.md``):

* **DET** — determinism: no wall clocks or global RNG in the
  simulator/capture/HBR layers; set iteration must be sorted.
* **LAY** — layering: imports must follow
  ``net → protocols → capture → hbr → {snapshot, verify} → repair →
  cli``; package import cycles are fatal.
* **OBS** — instrumentation: pipeline-stage entry points must carry
  a :mod:`repro.obs` span or metric.
* **HYG** — hygiene: mutable default args, bare ``except``,
  ``assert`` in shipped source.

Programmatic use::

    from repro.lint import LintRunner, sort_findings

    result = LintRunner().run_paths(["src/repro"])
    for finding in sort_findings(result.findings):
        print(finding.location, finding.rule, finding.message)
"""

from repro.lint import baseline  # noqa: F401  (re-exported submodule)
from repro.lint.core import (  # noqa: F401
    RULE_REGISTRY,
    FileContext,
    Finding,
    Rule,
    Severity,
    default_rules,
    register,
)
from repro.lint.engine import (  # noqa: F401
    LintResult,
    LintRunner,
    discover_files,
    module_name_for,
    sort_findings,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "LintRunner",
    "Rule",
    "RULE_REGISTRY",
    "Severity",
    "baseline",
    "default_rules",
    "discover_files",
    "module_name_for",
    "register",
    "sort_findings",
]
