"""Framework primitives for :mod:`repro.lint`.

The linter is a single-pass :mod:`ast` analysis: each file is parsed
once, every rule registers the node types it cares about, and the
engine walks the tree a single time dispatching nodes to interested
rules (see :mod:`repro.lint.engine`).  This module holds the pieces
rules are built from:

* :class:`Severity` — ordered ``info < warning < error``;
* :class:`Finding` — one diagnostic, with a location-independent
  fingerprint used by the baseline;
* :class:`Rule` + :func:`register` — the plugin registry;
* :class:`FileContext` — parsed tree, module identity, source lines,
  and the per-line ``lint-ignore`` pragma index for one file.

Suppression pragmas go on the line that triggers the finding::

    import time  # repro: lint-ignore[DET001] -- vendored shim

``lint-ignore[*]`` silences every rule on that line.  A file may also
declare its module identity (used by fixtures and by code linted
outside ``src/``)::

    # repro: lint-module=repro.net.fake
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type


class Severity(enum.IntEnum):
    """Finding severities; comparisons follow escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``evidence`` carries the whole-program rules' provenance: the call
    chain from the flagged function down to the nondeterministic /
    unsafe sink, one ``qualified.name (path:line)`` hop per entry.
    It is display-only — deliberately excluded from the fingerprint so
    refactors along the chain do not churn the baseline.
    """

    rule: str
    severity: Severity
    path: str
    module: str
    line: int
    col: int
    message: str
    evidence: Tuple[str, ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def fingerprint(self) -> str:
        """Baseline identity: stable across moves within a file.

        Deliberately excludes line/column (and evidence) so that
        unrelated edits above a grandfathered finding do not
        invalidate the baseline.
        """
        return f"{self.rule}|{self.path}|{self.message}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.evidence:
            payload["evidence"] = list(self.evidence)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (the analysis cache round-trip)."""
        return cls(
            rule=str(payload["rule"]),
            severity=Severity.parse(str(payload["severity"])),
            path=str(payload["path"]),
            module=str(payload.get("module", "")),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload.get("col", 0)),  # type: ignore[arg-type]
            message=str(payload["message"]),
            evidence=tuple(
                str(hop) for hop in payload.get("evidence", ())  # type: ignore[union-attr]
            ),
        )


_PRAGMA_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([^\]]*)\]")
_MODULE_RE = re.compile(r"^#\s*repro:\s*lint-module=([A-Za-z0-9_.]+)\s*$")

#: Pseudo-rule name matching every rule in a pragma.
IGNORE_ALL = "*"


def scan_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule names ignored there.

    One pragma may list several rules (``lint-ignore[DET100,CONC001]``)
    and one line may carry several pragma comments; every bracket
    group on the line contributes to the set (``finditer``, not
    ``search`` — a second pragma used to be silently dropped).
    """
    pragmas: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        names: Set[str] = set()
        for match in _PRAGMA_RE.finditer(text):
            names.update(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
        if names:
            pragmas[number] = names
    return pragmas


def scan_module_directive(lines: Sequence[str]) -> Optional[str]:
    """The ``lint-module=`` override, if declared in the first lines."""
    for text in lines[:5]:
        match = _MODULE_RE.match(text.strip())
        if match is not None:
            return match.group(1)
    return None


@dataclass
class FileContext:
    """Everything a rule may ask about the file under analysis."""

    path: str  #: path as given to the engine (repo-relative when possible)
    module: str  #: dotted module name, e.g. ``repro.net.simulator``
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, name) pragma entries that actually suppressed a finding —
    #: the engine's unused-pragma check (HYG004) reads this.
    pragma_hits: Set[Tuple[int, str]] = field(default_factory=set)
    #: Names of rules that ran on this file (filled by the engine).
    rules_ran: Set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        """Top-level subpackage under ``repro`` ('' when not repro code)."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return ""

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.pragmas.get(line)
        if not names:
            return False
        if rule in names:
            self.pragma_hits.add((line, rule))
            return True
        if IGNORE_ALL in names:
            self.pragma_hits.add((line, IGNORE_ALL))
            return True
        return False

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=rule.name,
            severity=severity if severity is not None else rule.severity,
            path=self.path,
            module=self.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name`, :attr:`severity`, :attr:`description`
    and :attr:`node_types`, then implement any of:

    * :meth:`visit` — called once per matching node during the single
      shared tree walk;
    * :meth:`finish_file` — called after each file's walk (whole-tree
      analyses such as qualified-name lookups);
    * :meth:`finish_project` — called once after every file, for
      cross-file analyses (the import graph);
    * :meth:`finish_whole_program` — called once per *deep* run with
      the resolved :class:`~repro.lint.callgraph.Project` (symbol
      table + call graph).  Only rules with ``needs_project = True``
      receive it, and only when the engine runs in deep mode.

    Each hook returns an iterable of :class:`Finding` (or ``None``).
    Rules are instantiated fresh per engine run, so instance state is
    private to one run.
    """

    name: str = "RULE000"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: AST node classes this rule's :meth:`visit` is dispatched for.
    node_types: Tuple[Type[ast.AST], ...] = ()
    #: True for whole-program (call-graph / dataflow) rules; they only
    #: run under ``LintRunner(deep=True)`` / ``repro lint --deep``.
    needs_project: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: yes)."""
        return True

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        return None

    def finish_file(self, ctx: FileContext) -> Optional[Iterable[Finding]]:
        return None

    def finish_project(self) -> Optional[Iterable[Finding]]:
        return None

    def finish_whole_program(self, project) -> Optional[Iterable[Finding]]:
        return None


#: All registered rule classes, keyed by rule name.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.name or cls.name in RULE_REGISTRY:
        raise ValueError(f"duplicate or empty rule name: {cls.name!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in name order."""
    # Importing the rule modules populates the registry; done lazily
    # so `import repro.lint.core` alone has no side effects.
    from repro.lint import rules  # noqa: F401

    return [RULE_REGISTRY[name]() for name in sorted(RULE_REGISTRY)]
