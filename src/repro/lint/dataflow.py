"""Fixpoint dataflow over the lint call graph.

Two analyses power the whole-program rule family:

* :class:`TaintAnalysis` — *backward* reachability from external
  sinks.  DET100 seeds it with the nondeterminism surface
  (``time.*``, ``random.*``, ``os.urandom``, env reads …); a function
  is tainted when it calls a seed directly or calls a tainted
  function, and every tainted function remembers its **shortest**
  witness chain down to the seed so findings can print provenance.
  Sanitizers cut propagation: a call that goes *through* a sanitizer
  function does not carry taint upward.

* :class:`ReachabilityAnalysis` — *forward* closure from entry
  points (fork workers, HTTP handler threads), tracking whether every
  path to a function went through a lock-guarded call site.  CONC001
  and CONC002 walk this closure looking for shared-state writes.

Both run to a fixpoint over the finite function set with monotone
state, so termination is structural; chains are tie-broken
lexicographically so the analysis is deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint.callgraph import Project


def _shorter(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
    """Prefer the shorter chain; tie-break lexicographically."""
    if len(a) != len(b):
        return a if len(a) < len(b) else b
    return min(a, b)


class TaintAnalysis:
    """Backward taint: which functions transitively reach a seed sink.

    ``seed_match(dotted)`` classifies an *external* call target; it
    returns a short human label for the sink (``"wall clock"``) or
    ``None``.  ``is_sanitizer(qname)`` marks internal functions whose
    own taint must not flow to callers (the ``obs.Stopwatch`` /
    explicit-rng quarantine boundary).
    """

    def __init__(
        self,
        project: Project,
        seed_match: Callable[[str], Optional[str]],
        is_sanitizer: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.project = project
        self.seed_match = seed_match
        self.is_sanitizer = is_sanitizer or (lambda _q: False)
        #: qname -> (chain of qnames ending at the sink description)
        self.chains: Dict[str, Tuple[str, ...]] = {}
        #: qname -> (label, dotted sink, "path:line" witness site).
        #: The label+dotted pair is location-free — rules put it in the
        #: finding *message* (baseline-stable); the site only appears
        #: in the evidence chain.
        self.sinks: Dict[str, Tuple[str, str, str]] = {}
        self._run()

    def _run(self) -> None:
        project = self.project
        # Seed: functions directly calling a matching external target.
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            best: Optional[Tuple[str, str, str]] = None
            for dotted, line, _locked in sorted(fn.external_calls):
                label = self.seed_match(dotted)
                if label is None:
                    continue
                candidate = (label, dotted, f"{fn.path}:{line}")
                if best is None or candidate < best:
                    best = candidate
            if best is not None:
                self.sinks[qname] = best
                self.chains[qname] = (qname,)
        # Propagate backwards along call edges to a fixpoint.
        changed = True
        while changed:
            changed = False
            for callee in sorted(self.chains):
                if self.is_sanitizer(callee):
                    continue
                chain = self.chains[callee]
                sink = self.sinks[callee]
                for edge in self.project.callers(callee):
                    if edge.kind == "decorator":
                        continue
                    caller = edge.src
                    candidate = (caller,) + chain
                    if len(candidate) > 12:
                        continue
                    current = self.chains.get(caller)
                    if current is None:
                        self.chains[caller] = candidate
                        self.sinks[caller] = sink
                        changed = True
                    else:
                        merged = _shorter(current, candidate)
                        if merged != current:
                            self.chains[caller] = merged
                            self.sinks[caller] = sink
                            changed = True

    def tainted(self, qname: str) -> bool:
        return qname in self.chains

    def sink_label(self, qname: str) -> str:
        """Location-free sink description, e.g. ``wall clock (time.time)``."""
        label, dotted, _site = self.sinks[qname]
        return f"{label} ({dotted})"

    def evidence(self, qname: str) -> Tuple[str, ...]:
        """Human chain: each hop ``qname (path:line)``, then the sink."""
        chain = self.chains.get(qname)
        if chain is None:
            return ()
        label, dotted, site = self.sinks[qname]
        hops = [self.project.describe(hop) for hop in chain]
        hops.append(f"-> {label} ({dotted}) at {site}")
        return tuple(hops)


class ReachabilityAnalysis:
    """Forward closure from entry points, with lock-path tracking.

    ``state[qname]`` is ``True`` when *every* discovered path from an
    entry point to ``qname`` passed through at least one call site
    lexically inside a ``with <lock>:`` block — such functions are
    serialized and their writes are safe.  ``False`` means at least
    one unlocked path exists.  The meet is logical AND, monotone
    downward, so the fixpoint terminates.
    """

    def __init__(
        self,
        project: Project,
        entries: Iterable[str],
        stop: Optional[FrozenSet[str]] = None,
    ) -> None:
        self.project = project
        self.stop = stop or frozenset()
        #: qname -> all-paths-locked?
        self.state: Dict[str, bool] = {}
        #: qname -> witness chain from the nearest entry point
        self.chains: Dict[str, Tuple[str, ...]] = {}
        self._run(sorted(set(entries)))

    def _run(self, entries: List[str]) -> None:
        project = self.project
        worklist: List[str] = []
        for entry in entries:
            if entry in project.functions:
                self.state[entry] = False
                self.chains[entry] = (entry,)
                worklist.append(entry)
        while worklist:
            qname = worklist.pop(0)
            if qname in self.stop:
                continue
            locked_here = self.state[qname]
            chain = self.chains[qname]
            if len(chain) > 12:
                continue
            for edge in project.callees(qname):
                if edge.kind == "decorator":
                    continue
                if edge.dst not in project.functions:
                    continue
                new_state = locked_here or edge.locked
                candidate = chain + (edge.dst,)
                current = self.state.get(edge.dst)
                if current is None:
                    self.state[edge.dst] = new_state
                    self.chains[edge.dst] = candidate
                    worklist.append(edge.dst)
                else:
                    merged = current and new_state
                    better_chain = _shorter(self.chains[edge.dst], candidate)
                    if merged != current or better_chain != self.chains[edge.dst]:
                        self.state[edge.dst] = merged
                        self.chains[edge.dst] = better_chain
                        worklist.append(edge.dst)

    def reachable(self) -> List[str]:
        return sorted(self.state)

    def unlocked(self, qname: str) -> bool:
        """Reachable with at least one lock-free path."""
        return qname in self.state and not self.state[qname]

    def evidence(self, qname: str) -> Tuple[str, ...]:
        chain = self.chains.get(qname)
        if chain is None:
            return ()
        return tuple(self.project.describe(hop) for hop in chain)


def reached_global_writes(
    project: Project,
    reach: ReachabilityAnalysis,
    *,
    only_unlocked: bool = False,
) -> List[Tuple[str, str, str, int]]:
    """(global qname, writer qname, how, line) for writes in the closure.

    A write counts when the writer function is reachable; with
    ``only_unlocked`` the writer must be reachable on a lock-free
    path *and* the write itself must not sit inside a lexical
    ``with <lock>`` block.  Only module globals known to the project
    are reported — writes to locals shadowing nothing are already
    filtered during extraction.
    """
    out: List[Tuple[str, str, str, int]] = []
    for qname in reach.reachable():
        if only_unlocked and not reach.unlocked(qname):
            continue
        fn = project.functions.get(qname)
        if fn is None:
            continue
        for name, line, how, locked in fn.global_writes:
            if only_unlocked and locked:
                continue
            global_q = f"{fn.module}.{name}"
            if global_q in project.globals:
                out.append((global_q, qname, how, line))
    return sorted(set(out))
