"""Project-wide symbol table and call graph for whole-program lint.

The single-file rules (DET001-003, HYG, PERF) see one tree at a time;
the concurrency/determinism properties this repo actually depends on
— "no function *transitively* reachable from HBR inference touches a
wall clock", "nothing a forked shard worker runs mutates shared state"
— are properties of the whole program.  This module builds the
substrate those rules (``rules/det_flow.py``, ``rules/concurrency.py``)
and the fixpoint engine (``dataflow.py``) analyse:

1. **Extraction** (:class:`ModuleExtractor`): one focused pass per
   parsed file collecting, per function, its raw call sites, function
   references, decorators, module-global writes, and the lexical
   ``with <lock>`` state of every call; per module, its import alias
   table, classes (bases, attribute types) and module-level mutable
   globals.
2. **Resolution** (:class:`Project`): raw names are resolved against
   the project symbol table — imports (aliased or not), module-level
   functions, ``self``/``cls`` method lookup through internal base
   classes, locals assigned from constructors, and parameters whose
   types are discovered by propagating argument types across call
   sites to a fixpoint.  Unresolvable targets are kept as *external*
   calls with their dotted name (``time.perf_counter``,
   ``os.urandom``) — exactly what the determinism taint seeds on.
3. **Roots** (:meth:`Project.fork_roots` / :meth:`Project.thread_roots`):
   functions handed to ``multiprocessing`` pools / ``Process`` are
   fork-worker entry points; ``threading.Thread`` targets, executor
   submissions and ``do_*`` methods of HTTP-handler subclasses are
   thread entry points.

Everything iterates in sorted order so findings — and the analysis
cache — are byte-stable across runs and hash seeds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Methods that mutate their receiver in place — a call of one of
#: these on a module-level name is a write to shared module state.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)

#: Constructor calls whose result is a mutable container.
MUTABLE_FACTORIES: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)

#: ``multiprocessing`` fan-out methods: the first positional argument
#: is executed in forked worker processes.
POOL_METHODS: FrozenSet[str] = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "map_async", "starmap_async", "apply_async"}
)

#: Known factory/return types the resolver cannot see syntactically.
#: Maps a resolved callee to the class its return value has.  Rules
#: may extend this via :meth:`Project.resolve_all`'s ``return_types``.
DEFAULT_RETURN_TYPES: Dict[str, str] = {
    "repro.obs.get_registry": "repro.obs.metrics.MetricsRegistry",
    "repro.obs.enable": "repro.obs.metrics.MetricsRegistry",
    "repro.obs.get_tracer": "repro.obs.tracing.Tracer",
    "repro.obs.get_recorder": "repro.obs.trace.recorder.FlightRecorder",
    "repro.obs.get_ledger": "repro.obs.resources.ResourceLedger",
    "repro.obs.get_profiler": "repro.obs.profiler.DeterministicProfiler",
    "repro.obs.metrics.MetricsRegistry.counter": "repro.obs.metrics.Counter",
    "repro.obs.metrics.MetricsRegistry.gauge": "repro.obs.metrics.Gauge",
    "repro.obs.metrics.MetricsRegistry.histogram": "repro.obs.metrics.Histogram",
    "repro.obs.metrics.MetricsRegistry.stopwatch": "repro.obs.metrics.Stopwatch",
}


# -- raw (unresolved) references -----------------------------------------


@dataclass
class CallSite:
    """One call expression, before resolution.

    ``raw`` is the dotted attribute path as written (``("pool",
    "map")``); ``chain_of`` is set instead when the call hangs off
    another call's result (``registry.histogram(...).observe(...)``).
    """

    raw: Tuple[str, ...]
    line: int
    locked: bool
    args: Tuple[Tuple[str, ...], ...] = ()
    kwargs: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    chain_of: Optional["CallSite"] = None


@dataclass
class FunctionInfo:
    """Everything extraction learned about one function or method."""

    qname: str
    module: str
    name: str
    path: str
    line: int
    cls: Optional[str] = None  #: enclosing class qname, if a method
    parent: Optional[str] = None  #: enclosing function qname, if nested
    params: Tuple[str, ...] = ()
    decorators: Tuple[Tuple[str, ...], ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    #: names referenced (not called) that may resolve to functions
    refs: List[Tuple[Tuple[str, ...], int]] = field(default_factory=list)
    #: local name -> raw path of the constructor / value it was
    #: assigned from ("self" maps a variable aliasing self).
    local_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: module-global writes: (global name, line, how, under-lock?)
    global_writes: List[Tuple[str, int, str, bool]] = field(default_factory=list)
    globals_declared: Set[str] = field(default_factory=set)
    locals_bound: Set[str] = field(default_factory=set)
    #: class qnames bound onto each parameter by callers (fixpoint).
    param_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: enclosing function of the *class* this method belongs to, when
    #: the class itself is nested in a function (closure handlers).
    cls_parent: Optional[str] = None
    # -- filled by resolution ------------------------------------------
    edges: List[Tuple[str, str, int, bool]] = field(default_factory=list)
    #: resolved external calls: (dotted name, line, locked)
    external_calls: List[Tuple[str, int, bool]] = field(default_factory=list)


@dataclass
class ClassInfo:
    qname: str
    module: str
    name: str
    line: int
    bases: Tuple[Tuple[str, ...], ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> qname
    #: attribute name -> raw constructor path seen in any method body
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: enclosing function qname when the class is nested in one (the
    #: closure-handler pattern); methods inherit it as ``cls_parent``.
    parent_fn: Optional[str] = None


@dataclass
class GlobalInfo:
    """A module-level binding (the CONC003 subjects)."""

    qname: str
    module: str
    name: str
    line: int
    mutable: bool = False
    #: raw constructor path, when the value was a constructor call
    ctor: Optional[Tuple[str, ...]] = None


@dataclass
class ModuleSummary:
    module: str
    path: str
    #: local alias -> dotted import target
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)


def _attr_path(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None when the base is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _looks_like_lock(raw: Optional[Tuple[str, ...]]) -> bool:
    if not raw:
        return False
    tail = raw[-1].lower()
    return "lock" in tail or "mutex" in tail


class ModuleExtractor:
    """One recursive pass over a module tree building a summary."""

    def __init__(self, module: str, path: str, tree: ast.AST) -> None:
        self.summary = ModuleSummary(module=module, path=path)
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[FunctionInfo] = []
        self._lock_depth = 0
        self._visit_body(getattr(tree, "body", []), at_module_level=True)

    # -- scope helpers -----------------------------------------------------

    def _qname(self, name: str) -> str:
        parts = [self.summary.module]
        if self._func_stack:
            parts = [self._func_stack[-1].qname]
        elif self._class_stack:
            parts = [self._class_stack[-1].qname]
        return ".".join(parts + [name])

    @property
    def _fn(self) -> Optional[FunctionInfo]:
        return self._func_stack[-1] if self._func_stack else None

    # -- traversal ---------------------------------------------------------

    def _visit_body(self, body: Sequence[ast.stmt], at_module_level: bool = False) -> None:
        for stmt in body:
            self._visit_stmt(stmt, at_module_level)

    def _visit_stmt(self, node: ast.stmt, at_module_level: bool = False) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_import(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._record_function(node)
        elif isinstance(node, ast.ClassDef):
            self._record_class(node)
        elif isinstance(node, ast.Global):
            if self._fn is not None:
                self._fn.globals_declared.update(node.names)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            lockish = any(
                _looks_like_lock(_attr_path(item.context_expr))
                for item in node.items
            )
            for item in node.items:
                self._visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars)
            if lockish:
                self._lock_depth += 1
            self._visit_body(node.body)
            if lockish:
                self._lock_depth -= 1
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._record_assignment(node, at_module_level)
        else:
            # Generic statement: visit nested statements and expressions.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._visit_stmt(child)
                elif isinstance(child, ast.expr):
                    self._visit_expr(child)
                elif isinstance(child, (ast.excepthandler,)):
                    self._visit_body(child.body)
                elif isinstance(child, ast.keyword):
                    self._visit_expr(child.value)

    # -- imports -----------------------------------------------------------

    def _record_import(self, node: ast.AST) -> None:
        imports = self.summary.imports
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"

    # -- definitions -------------------------------------------------------

    def _record_function(self, node) -> None:
        cls = self._class_stack[-1] if (self._class_stack and not self._func_stack) else None
        qname = self._qname(node.name)
        args = node.args
        params = tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )
        info = FunctionInfo(
            qname=qname,
            module=self.summary.module,
            name=node.name,
            path=self.summary.path,
            line=node.lineno,
            cls=cls.qname if cls is not None else None,
            parent=self._fn.qname if self._fn is not None else None,
            cls_parent=cls.parent_fn if cls is not None else None,
            params=params,
            decorators=tuple(
                raw
                for raw in (_attr_path(_decorator_base(d)) for d in node.decorator_list)
                if raw is not None
            ),
        )
        info.locals_bound.update(params)
        self.summary.functions[qname] = info
        if cls is not None:
            cls.methods[node.name] = qname
        if self._fn is not None:
            # A nested def is at least referenced by its parent.
            self._fn.refs.append(((node.name,), node.lineno))
            self._fn.local_types[node.name] = ("__function__", qname)
        for d in node.decorator_list:
            self._visit_expr(d)
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            self._visit_expr(default)
        self._func_stack.append(info)
        saved_lock = self._lock_depth
        self._lock_depth = 0
        self._visit_body(node.body)
        self._lock_depth = saved_lock
        self._func_stack.pop()

    def _record_class(self, node: ast.ClassDef) -> None:
        qname = self._qname(node.name)
        info = ClassInfo(
            qname=qname,
            module=self.summary.module,
            name=node.name,
            line=node.lineno,
            bases=tuple(
                raw for raw in (_attr_path(b) for b in node.bases) if raw is not None
            ),
            parent_fn=self._fn.qname if self._fn is not None else None,
        )
        self.summary.classes[qname] = info
        self._class_stack.append(info)
        saved = self._func_stack
        self._func_stack = []
        self._visit_body(node.body)
        self._func_stack = saved
        self._class_stack.pop()

    # -- assignments -------------------------------------------------------

    def _record_assignment(self, node, at_module_level: bool) -> None:
        value = getattr(node, "value", None)
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if value is not None:
            self._visit_expr(value)
        fn = self._fn
        locked = self._lock_depth > 0
        for target in targets:
            if isinstance(target, ast.Name):
                if at_module_level and not self._class_stack and fn is None:
                    self._record_global_def(target.id, target.lineno, value)
                elif fn is not None:
                    aug_on_global = isinstance(node, ast.AugAssign) and (
                        target.id not in fn.locals_bound
                        and target.id in self.summary.globals
                    )
                    if target.id in fn.globals_declared or aug_on_global:
                        fn.global_writes.append(
                            (target.id, target.lineno, "assign", locked)
                        )
                    else:
                        fn.locals_bound.add(target.id)
                        self._record_local_type(fn, target.id, value)
            elif isinstance(target, ast.Subscript):
                raw = _attr_path(target.value)
                if fn is not None and raw is not None and len(raw) == 1:
                    name = raw[0]
                    if name not in fn.locals_bound and name not in fn.params:
                        fn.global_writes.append(
                            (name, target.lineno, "subscript", locked)
                        )
                self._visit_expr(target.value)
                self._visit_expr(target.slice)
            elif isinstance(target, ast.Attribute):
                self._record_attr_assignment(target, value)
                self._visit_expr(target.value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name) and fn is not None:
                        fn.locals_bound.add(element.id)

    def _bind_target(self, target: ast.expr) -> None:
        fn = self._fn
        if fn is None:
            return
        if isinstance(target, ast.Name):
            fn.locals_bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)

    def _record_global_def(self, name: str, line: int, value) -> None:
        mutable = False
        ctor: Optional[Tuple[str, ...]] = None
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            mutable = True
        elif isinstance(value, ast.Call):
            raw = _attr_path(value.func)
            ctor = raw
            if raw is not None and raw[-1] in MUTABLE_FACTORIES:
                mutable = True
        self.summary.globals[name] = GlobalInfo(
            qname=f"{self.summary.module}.{name}",
            module=self.summary.module,
            name=name,
            line=line,
            mutable=mutable,
            ctor=ctor,
        )

    def _record_local_type(self, fn: FunctionInfo, name: str, value) -> None:
        if value is None:
            return
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls"):
                fn.local_types[name] = ("self",)
            elif value.id in fn.local_types:
                fn.local_types[name] = fn.local_types[value.id]
            return
        if isinstance(value, ast.IfExp):
            # `x = a if cond else B()` — prefer whichever arm names a type.
            for arm in (value.body, value.orelse):
                if isinstance(arm, ast.Call):
                    raw = _attr_path(arm.func)
                    if raw is not None:
                        fn.local_types[name] = ("call",) + raw
                        return
            return
        if isinstance(value, ast.Call):
            raw = _attr_path(value.func)
            if raw is not None:
                fn.local_types[name] = ("call",) + raw

    def _record_attr_assignment(self, target: ast.Attribute, value) -> None:
        # `self.engine = HealthEngine()` inside a method: remember the
        # attribute's constructor so method calls on it resolve.
        if not (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._fn is not None
            and self._fn.cls is not None
        ):
            return
        cls = self.summary.classes.get(self._fn.cls)
        if cls is None or target.attr in cls.attr_types:
            return
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        elif isinstance(value, ast.BoolOp):
            candidates = list(value.values)
        for arm in candidates:
            if isinstance(arm, ast.Call):
                raw = _attr_path(arm.func)
                if raw is not None:
                    cls.attr_types[target.attr] = raw
                    return
            if isinstance(arm, ast.Name) and self._fn is not None:
                # `self.engine = engine` — a constructor parameter;
                # try its annotation via local_types (not tracked) —
                # skip, the IfExp arm usually names the type.
                continue

    # -- expressions -------------------------------------------------------

    def _visit_expr(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
            return
        if isinstance(node, ast.Lambda):
            self._visit_expr(node.body)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)
            elif isinstance(child, ast.keyword):
                self._visit_expr(child.value)

    def _record_call(self, node: ast.Call) -> CallSite:
        fn = self._fn
        raw = _attr_path(node.func)
        chain_parent: Optional[CallSite] = None
        if raw is None and isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Call
        ):
            chain_parent = self._record_call(node.func.value)
            raw = (node.func.attr,)
        elif raw is None:
            self._visit_expr(node.func)

        arg_raws: List[Tuple[str, ...]] = []
        for arg in node.args:
            arg_raw = _attr_path(arg)
            if arg_raw is not None:
                arg_raws.append(arg_raw)
                if fn is not None:
                    fn.refs.append((arg_raw, getattr(arg, "lineno", node.lineno)))
            else:
                arg_raws.append(())
                self._visit_expr(arg)
        kw_raws: List[Tuple[str, Tuple[str, ...]]] = []
        for kw in node.keywords:
            kw_raw = _attr_path(kw.value)
            if kw.arg is not None and kw_raw is not None:
                kw_raws.append((kw.arg, kw_raw))
                if fn is not None:
                    fn.refs.append((kw_raw, getattr(kw.value, "lineno", node.lineno)))
            else:
                self._visit_expr(kw.value)

        site = CallSite(
            raw=raw if raw is not None else (),
            line=node.lineno,
            locked=self._lock_depth > 0,
            args=tuple(arg_raws),
            kwargs=tuple(kw_raws),
            chain_of=chain_parent,
        )
        if fn is not None and (site.raw or site.chain_of is not None):
            fn.calls.append(site)
            # Mutating method call on a module global: `_CACHE.append(x)`.
            if (
                len(site.raw) == 2
                and site.raw[1] in MUTATING_METHODS
                and site.raw[0] not in fn.locals_bound
                and site.raw[0] not in fn.params
                and site.raw[0] not in self.summary.imports
            ):
                fn.global_writes.append(
                    (site.raw[0], node.lineno, "mutate", self._lock_depth > 0)
                )
        return site


def _decorator_base(node: ast.expr) -> ast.expr:
    """``@obs.traced("x")`` -> the ``obs.traced`` expression."""
    return node.func if isinstance(node, ast.Call) else node


# -- the resolved project ------------------------------------------------


@dataclass
class Edge:
    """One resolved call-graph edge."""

    src: str
    dst: str
    kind: str  #: 'call' | 'ref' | 'decorator'
    line: int
    locked: bool


class Project:
    """Symbol table + resolved call graph over a set of modules."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.globals: Dict[str, GlobalInfo] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self.functions.update(summary.functions)
            self.classes.update(summary.classes)
            for info in summary.globals.values():
                self.globals[info.qname] = info
        self._rcallers: Dict[str, List[Edge]] = {}
        self._edges: Dict[str, List[Edge]] = {}
        self.return_types: Dict[str, str] = dict(DEFAULT_RETURN_TYPES)
        self.resolve_all()

    # -- resolution --------------------------------------------------------

    def resolve_all(self) -> None:
        """Resolve every call site; iterate to propagate param types."""
        for _round in range(4):
            changed = self._resolve_round()
            if not changed:
                break
        self._edges = {}
        self._rcallers = {}
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            seen: Set[Tuple[str, str, int]] = set()
            out: List[Edge] = []
            for dst, kind, line, locked in sorted(fn.edges):
                key = (dst, kind, line)
                if key in seen:
                    continue
                seen.add(key)
                edge = Edge(src=qname, dst=dst, kind=kind, line=line, locked=locked)
                out.append(edge)
                self._rcallers.setdefault(dst, []).append(edge)
            self._edges[qname] = out

    def _resolve_round(self) -> bool:
        changed = False
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            fn.edges = []
            fn.external_calls = []
            for site in fn.calls:
                for kind, target in self._resolve_site(fn, site):
                    if kind == "internal":
                        fn.edges.append((target, "call", site.line, site.locked))
                        changed |= self._bind_params(fn, site, target)
                    elif kind == "external":
                        fn.external_calls.append((target, site.line, site.locked))
            for raw, line in fn.refs:
                resolved = self._resolve_raw(fn, raw)
                for kind, target in resolved:
                    if kind == "internal" and target in self.functions:
                        fn.edges.append((target, "ref", line, False))
            for raw in fn.decorators:
                for kind, target in self._resolve_raw(fn, raw):
                    if kind == "internal" and target in self.functions:
                        fn.edges.append((target, "decorator", fn.line, False))
        return changed

    def _bind_params(self, fn: FunctionInfo, site: CallSite, callee_q: str) -> bool:
        """Propagate known argument types onto the callee's params."""
        callee = self.functions.get(callee_q)
        if callee is None:
            return False
        params = list(callee.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        changed = False
        for position, arg_raw in enumerate(site.args):
            if position >= len(params) or not arg_raw:
                continue
            for cls_q in self._type_of(fn, arg_raw):
                bucket = callee.param_types.setdefault(params[position], set())
                if cls_q not in bucket and len(bucket) < 4:
                    bucket.add(cls_q)
                    changed = True
        for kw_name, kw_raw in site.kwargs:
            if kw_name not in callee.params:
                continue
            for cls_q in self._type_of(fn, kw_raw):
                bucket = callee.param_types.setdefault(kw_name, set())
                if cls_q not in bucket and len(bucket) < 4:
                    bucket.add(cls_q)
                    changed = True
        return changed

    def _type_of(self, fn: FunctionInfo, raw: Tuple[str, ...]) -> List[str]:
        """Class qnames a raw expression may evaluate to (best effort)."""
        if not raw:
            return []
        if raw[0] in ("self", "cls") and len(raw) == 1 and fn.cls is not None:
            return [fn.cls]
        if raw[0] in fn.param_types and len(raw) == 1:
            # Forward a caller-bound parameter type to the next callee
            # (`build_sharded(engine, ...)` -> `infer_shard(engine, ...)`).
            return sorted(fn.param_types[raw[0]])
        local = fn.local_types.get(raw[0])
        if local is not None and len(raw) == 1:
            if local == ("self",) and fn.cls is not None:
                return [fn.cls]
            if local and local[0] == "call":
                resolved = self._resolve_dotted_in_module(fn.module, local[1:])
                if resolved and resolved[0] == "internal":
                    target = resolved[1]
                    if target in self.classes:
                        return [target]
                    if target in self.return_types:
                        return [self.return_types[target]]
        return []

    def _resolve_site(
        self, fn: FunctionInfo, site: CallSite
    ) -> List[Tuple[str, str]]:
        if site.chain_of is not None:
            # `registry.histogram(...).observe(...)`: type the inner
            # call's result, then look the attr up on that class.
            inner = self._resolve_site(fn, site.chain_of)
            results: List[Tuple[str, str]] = []
            for kind, target in inner:
                if kind != "internal":
                    continue
                cls_q = self.return_types.get(target)
                if cls_q is None:
                    continue
                method = self._lookup_method(cls_q, site.raw[0]) if site.raw else None
                if method is not None:
                    results.append(("internal", method))
            return results
        return self._resolve_raw(fn, site.raw)

    def _resolve_raw(
        self, fn: FunctionInfo, raw: Tuple[str, ...]
    ) -> List[Tuple[str, str]]:
        if not raw:
            return []
        head = raw[0]
        module = self.modules.get(fn.module)
        # self / cls: method or typed-attribute lookup on the class.
        if head in ("self", "cls") and fn.cls is not None and len(raw) >= 2:
            return self._resolve_on_class(fn.cls, raw[1:], fn)
        # Local variable with a known constructor type.
        local = fn.local_types.get(head)
        if local is not None:
            if local == ("self",) and fn.cls is not None and len(raw) >= 2:
                return self._resolve_on_class(fn.cls, raw[1:], fn)
            if local and local[0] == "__function__" and len(raw) == 1:
                return [("internal", local[1])]
            if local and local[0] == "call":
                resolved = self._resolve_dotted_in_module(fn.module, local[1:])
                if resolved and resolved[0] == "internal":
                    target = resolved[1]
                    cls_q = (
                        target
                        if target in self.classes
                        else self.return_types.get(target)
                    )
                    if cls_q is not None and len(raw) >= 2:
                        return self._resolve_on_class(cls_q, raw[1:], fn)
                elif resolved and resolved[0] == "external" and len(raw) >= 2:
                    return []  # method on an external object: unknown
            return []
        # Parameter with caller-bound types.
        if head in fn.param_types and len(raw) >= 2:
            results: List[Tuple[str, str]] = []
            for cls_q in sorted(fn.param_types[head]):
                results.extend(self._resolve_on_class(cls_q, raw[1:], fn))
            return results
        if head in fn.locals_bound or head in fn.params:
            return []  # untyped local / parameter: opaque
        # Enclosing function scope (closures: `server = self` above a
        # nested def, or above a nested class's methods).
        for parent_q in (fn.parent, fn.cls_parent):
            if parent_q is None:
                continue
            parent = self.functions.get(parent_q)
            if parent is not None and (
                head in parent.local_types or head in parent.locals_bound
            ):
                return self._resolve_raw(parent, raw)
        if module is None:
            return []
        # Import alias.
        if head in module.imports:
            dotted = tuple(module.imports[head].split(".")) + raw[1:]
            resolved = self._resolve_dotted(dotted)
            return self._post_resolve(resolved, fn)
        # Module-level symbol of the same module.
        own = f"{fn.module}.{head}"
        if own in self.functions and len(raw) == 1:
            return [("internal", own)]
        if own in self.classes:
            if len(raw) == 1:
                return self._post_resolve(("internal", own), fn)
            return self._resolve_on_class(own, raw[1:], fn)
        if head in module.globals:
            info = module.globals[head]
            if info.ctor is not None and len(raw) >= 2:
                resolved = self._resolve_dotted_in_module(fn.module, info.ctor)
                if resolved and resolved[0] == "internal" and resolved[1] in self.classes:
                    return self._resolve_on_class(resolved[1], raw[1:], fn)
            return []
        # Unknown bare name (builtin, etc.): only meaningful dotted.
        if len(raw) >= 2:
            resolved = self._resolve_dotted(raw)
            if resolved is not None and resolved[0] == "external":
                return []  # `foo.bar()` with unknown foo: opaque
            return self._post_resolve(resolved, fn)
        return []

    def _post_resolve(
        self, resolved: Optional[Tuple[str, str]], fn: FunctionInfo
    ) -> List[Tuple[str, str]]:
        if resolved is None:
            return []
        kind, target = resolved
        if kind == "internal" and target in self.classes:
            # Instantiation: the edge goes to __init__ when defined.
            init = self._lookup_method(target, "__init__")
            return [("internal", init)] if init is not None else []
        return [(kind, target)]

    def _resolve_dotted_in_module(
        self, module: str, raw: Tuple[str, ...]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a raw path as if written at module scope of ``module``."""
        if not raw:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        head = raw[0]
        if head in summary.imports:
            return self._resolve_dotted(
                tuple(summary.imports[head].split(".")) + raw[1:]
            )
        own = f"{module}.{head}"
        if own in self.functions or own in self.classes:
            if len(raw) == 1:
                return ("internal", own)
            return self._resolve_dotted(tuple(module.split(".")) + raw)
        if len(raw) >= 2:
            return self._resolve_dotted(raw)
        return None

    def _resolve_dotted(self, dotted: Tuple[str, ...]) -> Optional[Tuple[str, str]]:
        """Longest-prefix match of a fully dotted path against modules."""
        for split in range(len(dotted), 0, -1):
            module = ".".join(dotted[:split])
            if module in self.modules:
                rest = dotted[split:]
                if not rest:
                    return ("internal", module)
                target = f"{module}.{'.'.join(rest)}"
                if target in self.functions or target in self.classes:
                    return ("internal", target)
                if len(rest) == 2:
                    cls_q = f"{module}.{rest[0]}"
                    if cls_q in self.classes:
                        method = self._lookup_method(cls_q, rest[1])
                        if method is not None:
                            return ("internal", method)
                if target in self.globals:
                    return ("internal", target)
                # Inside a known module but not a known symbol: treat
                # as internal-opaque (re-exports); fall back external
                # so taint seeds still see e.g. `repro.obs.span`.
                return ("external", target)
        return ("external", ".".join(dotted))

    def _resolve_on_class(
        self, cls_q: str, rest: Tuple[str, ...], fn: FunctionInfo
    ) -> List[Tuple[str, str]]:
        if not rest:
            return []
        method = self._lookup_method(cls_q, rest[0])
        if method is not None and len(rest) == 1:
            return [("internal", method)]
        cls = self.classes.get(cls_q)
        if cls is not None and rest[0] in cls.attr_types and len(rest) >= 2:
            resolved = self._resolve_dotted_in_module(cls.module, cls.attr_types[rest[0]])
            if resolved and resolved[0] == "internal" and resolved[1] in self.classes:
                return self._resolve_on_class(resolved[1], rest[1:], fn)
        return []

    def _lookup_method(self, cls_q: str, name: str) -> Optional[str]:
        """Method lookup through internal base classes (bounded MRO)."""
        seen: Set[str] = set()
        queue = [cls_q]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            for base_raw in cls.bases:
                resolved = self._resolve_dotted_in_module(cls.module, base_raw)
                if resolved and resolved[0] == "internal":
                    queue.append(resolved[1])
        return None

    # -- graph queries -----------------------------------------------------

    def callees(self, qname: str) -> List[Edge]:
        return self._edges.get(qname, [])

    def callers(self, qname: str) -> List[Edge]:
        return self._rcallers.get(qname, [])

    def location(self, qname: str) -> Tuple[str, int]:
        fn = self.functions.get(qname)
        if fn is not None:
            return fn.path, fn.line
        info = self.globals.get(qname)
        if info is not None:
            summary = self.modules.get(info.module)
            return (summary.path if summary else "<unknown>"), info.line
        return "<unknown>", 1

    def describe(self, qname: str) -> str:
        """``qual.name (path:line)`` — one evidence-chain hop."""
        if qname in self.functions or qname in self.globals:
            path, line = self.location(qname)
            return f"{qname} ({path}:{line})"
        return f"{qname}()"

    # -- concurrency roots -------------------------------------------------

    def fork_roots(self) -> List[Tuple[str, str, int]]:
        """(worker function, spawning function, line) for fork fan-outs."""
        roots: List[Tuple[str, str, int]] = []
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            for site in fn.calls:
                if not site.raw:
                    continue
                tail = site.raw[-1]
                if tail in POOL_METHODS and site.args:
                    for target in self._resolve_raw(fn, site.args[0]):
                        if target[0] == "internal" and target[1] in self.functions:
                            roots.append((target[1], qname, site.line))
                elif tail == "Process":
                    for kw_name, kw_raw in site.kwargs:
                        if kw_name != "target":
                            continue
                        for target in self._resolve_raw(fn, kw_raw):
                            if target[0] == "internal" and target[1] in self.functions:
                                roots.append((target[1], qname, site.line))
        return sorted(set(roots))

    def thread_roots(self) -> List[Tuple[str, str, int]]:
        """(entry function, why, line) for thread-executed entry points."""
        roots: List[Tuple[str, str, int]] = []
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            for site in fn.calls:
                if not site.raw:
                    continue
                tail = site.raw[-1]
                if tail in ("Thread", "Timer") or tail == "submit":
                    for kw_name, kw_raw in site.kwargs:
                        if kw_name != "target":
                            continue
                        for target in self._resolve_raw(fn, kw_raw):
                            if target[0] == "internal" and target[1] in self.functions:
                                roots.append((target[1], qname, site.line))
                    if tail == "submit" and site.args:
                        for target in self._resolve_raw(fn, site.args[0]):
                            if target[0] == "internal" and target[1] in self.functions:
                                roots.append((target[1], qname, site.line))
        for cls_q in sorted(self.classes):
            cls = self.classes[cls_q]
            if not self._is_http_handler(cls):
                continue
            for name in sorted(cls.methods):
                if name.startswith("do_") or name == "log_message":
                    method = cls.methods[name]
                    roots.append((method, cls_q, self.functions[method].line))
        return sorted(set(roots))

    def _is_http_handler(self, cls: ClassInfo, depth: int = 0) -> bool:
        if depth > 3:
            return False
        for base_raw in cls.bases:
            if base_raw and base_raw[-1] in (
                "BaseHTTPRequestHandler",
                "SimpleHTTPRequestHandler",
            ):
                return True
            resolved = self._resolve_dotted_in_module(cls.module, base_raw)
            if resolved and resolved[0] == "internal":
                base = self.classes.get(resolved[1])
                if base is not None and self._is_http_handler(base, depth + 1):
                    return True
        return False


def build_project(
    files: Iterable[Tuple[str, str, ast.AST]]
) -> Project:
    """Extract + resolve: (path, module, tree) triples -> Project."""
    summaries = [
        ModuleExtractor(module, path, tree).summary
        for path, module, tree in sorted(files, key=lambda f: f[1])
    ]
    return Project(summaries)
