"""Rule plugins; importing this package registers every rule.

Add a new rule by writing a :class:`repro.lint.core.Rule` subclass in
one of these modules (or a new one imported here) and decorating it
with :func:`repro.lint.core.register`.  See docs/STATIC_ANALYSIS.md.
"""

from repro.lint.rules import det, hyg, lay, obs_rules, perf  # noqa: F401
