"""Rule plugins; importing this package registers every rule.

Add a new rule by writing a :class:`repro.lint.core.Rule` subclass in
one of these modules (or a new one imported here) and decorating it
with :func:`repro.lint.core.register`.  See docs/STATIC_ANALYSIS.md.
"""

from repro.lint.rules import (  # noqa: F401
    concurrency,
    det,
    det_flow,
    hyg,
    lay,
    obs_rules,
    perf,
)
