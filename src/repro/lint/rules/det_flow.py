"""DET100 — interprocedural determinism taint.

DET001-003 (:mod:`repro.lint.rules.det`) ban the *syntactic* surface:
``import time`` in pipeline packages, global-RNG helpers, unordered
set iteration.  They cannot see a helper three calls away that reads
the wall clock.  DET100 closes that hole with whole-program taint:
any function in a replay-critical package (``net``, ``protocols``,
``capture``, ``hbr``, ``snapshot``) that *transitively* reaches a
nondeterministic sink is flagged, with the full call chain attached
as evidence.

Sinks: wall clocks (``time.*``, ``datetime.now``/``today``), the
global RNG (``random.*`` module functions), entropy sources
(``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``) and environment
reads (``os.getenv``, ``os.environ.get``).

Sanitizers: everything under ``repro.obs`` / ``repro.lint`` — the
Stopwatch quarantine is exactly the blessed way to touch the clock,
and its taint must not leak to callers; ``random.Random(seed)`` /
``random.SystemRandom`` constructions are *not* seeds (explicit-rng
instances passed as parameters stay opaque to the resolver, which is
the intended escape hatch — determinism is the caller's seed).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.lint.core import Finding, Rule, Severity, register
from repro.lint.dataflow import TaintAnalysis

#: Packages whose functions are flagged when tainted.  Taint still
#: *propagates through* other packages (a tainted helper in ``core``
#: taints its ``hbr`` caller) — this set only gates where findings
#: are reported.
DET_FLOW_PACKAGES = frozenset({"net", "protocols", "capture", "hbr", "snapshot"})

#: Module prefixes whose functions sanitize (absorb) taint.
SANITIZER_PREFIXES = ("repro.obs.", "repro.lint.")

_DATETIME_SINKS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

_ENTROPY_SINKS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

_ENV_SINKS = frozenset({"os.getenv", "os.environ.get", "os.environ.setdefault"})

#: ``random`` attributes that are explicit-RNG *constructors*, not
#: global-state draws.
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed"})


def classify_sink(dotted: str) -> Optional[str]:
    """Label a resolved external call when it is a determinism sink."""
    if dotted.startswith("time."):
        return "wall clock"
    if dotted in _DATETIME_SINKS:
        return "wall clock"
    if dotted.startswith("random."):
        rest = dotted.split(".", 1)[1]
        if rest.split(".")[0] not in _RANDOM_OK:
            return "global RNG"
        return None
    if dotted in _ENTROPY_SINKS or dotted.startswith("secrets."):
        return "entropy source"
    if dotted in _ENV_SINKS:
        return "environment read"
    return None


def is_sanitizer(qname: str) -> bool:
    return qname.startswith(SANITIZER_PREFIXES)


def _package_of(module: str) -> str:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return ""


@register
class DeterminismFlowRule(Rule):
    """DET100: no transitive nondeterminism in replay-critical packages."""

    name = "DET100"
    severity = Severity.ERROR
    description = (
        "function in a replay-critical package (net/protocols/capture/"
        "hbr/snapshot) transitively reaches a nondeterministic sink "
        "(wall clock, global RNG, entropy, environment); route timing "
        "through obs.Stopwatch and randomness through an explicit "
        "seeded rng parameter"
    )
    needs_project = True

    def finish_whole_program(self, project) -> Optional[Iterable[Finding]]:
        taint = TaintAnalysis(project, classify_sink, is_sanitizer)
        findings: List[Finding] = []
        for qname in sorted(taint.chains):
            fn = project.functions.get(qname)
            if fn is None:
                continue
            if _package_of(fn.module) not in DET_FLOW_PACKAGES:
                continue
            if is_sanitizer(qname):
                continue
            findings.append(
                Finding(
                    rule=self.name,
                    severity=self.severity,
                    path=fn.path,
                    module=fn.module,
                    line=fn.line,
                    col=0,
                    message=(
                        f"'{qname}' transitively reaches nondeterministic "
                        f"{taint.sink_label(qname)}"
                    ),
                    evidence=taint.evidence(qname),
                )
            )
        return findings
