"""LAY — architectural layering rules.

The reproduction's packages form a strict stack::

    net → capture → protocols → hbr → {snapshot, verify} → repair → cli

(an arrow means "may be imported by"; higher layers may import lower
ones, never the reverse).  ``repro.obs`` and the root ``repro``
facade are importable from anywhere; ``repro.lint`` sits beside the
CLI.  LAY001 flags order violations; LAY002 detects import cycles
between packages, which are always fatal — a cyclic layering cannot
be reasoned about at all (CB-VER's "stable foundation" argument).

The stack originally declared ``protocols`` *below* ``capture``,
which grandfathered six inversions into the baseline: the protocol
machinery logs through ``capture``'s event types, so the real
dependency direction is capture-first.  ``capture`` itself imports
only ``repro.net.addr`` (+ ``obs``), making the re-layering sound;
the burned-down baseline and its ratchet test keep it that way.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule, Severity, register

#: Layer index per top-level subpackage of ``repro``.  Same-layer
#: imports (snapshot ↔ verify) are allowed as long as they stay
#: acyclic; LAY002 guards the cycle case.
LAYERS: Dict[str, int] = {
    "net": 1,
    "capture": 2,
    "protocols": 3,
    "hbr": 4,
    "snapshot": 5,
    "verify": 5,
    "repair": 6,
    "whatif": 7,
    "core": 7,
    "analysis": 7,
    "scenarios": 7,
    "lint": 8,
    "cli": 8,
    "__main__": 8,
}

#: Importable from any layer, in any direction.
EXEMPT: Set[str] = {"obs", "repro"}


def _import_targets(node: ast.AST) -> List[str]:
    """Dotted ``repro.*`` module names referenced by an import node."""
    targets: List[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                targets.append(alias.name)
    elif isinstance(node, ast.ImportFrom) and node.level == 0:
        module = node.module or ""
        if module == "repro":
            # `from repro import X` — X may be a subpackage or a
            # root-level attribute; resolve each alias separately.
            for alias in node.names:
                if alias.name in LAYERS or alias.name in EXEMPT:
                    targets.append(f"repro.{alias.name}")
                else:
                    targets.append("repro")
        elif module.startswith("repro."):
            targets.append(module)
    return targets


def _package_of(dotted: str) -> str:
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return "repro"


class _ImportGraphMixin:
    """Shared per-run collection of package-level import edges."""

    node_types = (ast.Import, ast.ImportFrom)

    def __init__(self) -> None:
        # (src_pkg, dst_pkg) -> first witness (ctx-path, module, node)
        self.edges: Dict[
            Tuple[str, str], Tuple[str, str, int, str]
        ] = {}

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.") and ctx.package != ""

    def record(self, node: ast.AST, ctx: FileContext) -> None:
        for target in _import_targets(node):
            dst = _package_of(target)
            src = ctx.package
            if src == dst:
                continue
            key = (src, dst)
            if key not in self.edges:
                self.edges[key] = (
                    ctx.path,
                    ctx.module,
                    getattr(node, "lineno", 1),
                    target,
                )


@register
class LayerOrderRule(_ImportGraphMixin, Rule):
    """LAY001: imports must point down the layer stack."""

    name = "LAY001"
    severity = Severity.ERROR
    description = (
        "import from a higher architectural layer; the stack is "
        "net → capture → protocols → hbr → {snapshot, verify} → "
        "repair → cli"
    )

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        findings = []
        src = ctx.package
        if src in EXEMPT or src not in LAYERS:
            return None
        for target in _import_targets(node):
            dst = _package_of(target)
            if dst in EXEMPT or dst not in LAYERS or dst == src:
                continue
            if LAYERS[dst] > LAYERS[src]:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"layer '{src}' (#{LAYERS[src]}) imports "
                        f"'{target}' from higher layer '{dst}' "
                        f"(#{LAYERS[dst]})",
                    )
                )
        return findings


@register
class ImportCycleRule(_ImportGraphMixin, Rule):
    """LAY002: package-level import cycles are always fatal."""

    name = "LAY002"
    severity = Severity.ERROR
    description = "import cycle between repro subpackages"

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        self.record(node, ctx)
        return None

    def finish_project(self) -> Optional[Iterable[Finding]]:
        graph: Dict[str, Set[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        cycles = self._find_cycles(graph)
        findings = []
        for cycle in cycles:
            # Anchor the finding at the first recorded edge of the cycle.
            head = (cycle[0], cycle[1])
            path, module, line, target = self.edges[head]
            findings.append(
                Finding(
                    rule=self.name,
                    severity=self.severity,
                    path=path,
                    module=module,
                    line=line,
                    col=0,
                    message=(
                        "import cycle between packages: "
                        + " -> ".join(cycle + [cycle[0]])
                    ),
                )
            )
        return findings

    @staticmethod
    def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
        """Elementary cycles, canonicalised and deduplicated.

        Iterative DFS with an explicit stack; node order is sorted so
        the report is deterministic.
        """
        cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(graph):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for neighbour in sorted(graph.get(node, ())):
                    if neighbour == start and len(path) > 1:
                        # Canonical rotation: start at the smallest name.
                        pivot = path.index(min(path))
                        cycles.add(tuple(path[pivot:] + path[:pivot]))
                    elif neighbour not in path and neighbour >= start:
                        stack.append((neighbour, path + [neighbour]))
        return [list(c) for c in sorted(cycles)]
