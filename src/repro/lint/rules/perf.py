"""PERF — hot-path performance rules.

The control-plane pipeline is the paper's product: HBG inference and
snapshot checking run *online* (§4–§5), so accidentally-quadratic
idioms in the packages on that path are treated as defects, not
style.  The two patterns below each caused a real slowdown in this
repo before the indexed-inference work banished them:

* ``list.insert`` (and ``bisect.insort``) shifts every later element —
  O(N) per call, O(N²) per stream.  Order-maintaining state belongs in
  :class:`repro.hbr.index.SortedEventList` or an equivalent structure.
* ``x in [...]``-style membership against a (statically visible) list
  scans linearly on every evaluation; sets/frozensets or dict lookups
  are O(1) and just as readable.

Sanctioned exceptions (a bounded chunk insert, a keyed non-positional
``insert`` API) carry ``# repro: lint-ignore[PERF001]`` pragmas or
live in the committed baseline.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import FileContext, Finding, Rule, Severity, register

#: Packages on the online pipeline's hot path.
PERF_PACKAGES = frozenset({"net", "capture", "hbr", "snapshot"})

#: ``bisect`` helpers that are ``list.insert`` in disguise.
_INSORT_NAMES = frozenset({"insort", "insort_left", "insort_right"})


@register
class LinearInsertRule(Rule):
    """PERF001: O(N) positional list inserts / linear list membership."""

    name = "PERF001"
    severity = Severity.WARNING
    description = (
        "O(N) list.insert/insort or linear list-membership test on the "
        "hot path; use an order-maintaining container or a set"
    )
    node_types = (ast.Call, ast.Compare)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.package in PERF_PACKAGES

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.Call):
            return self._check_call(node, ctx)
        if isinstance(node, ast.Compare):
            return self._check_membership(node, ctx)
        return None

    def _check_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        func = node.func
        # obj.insert(index, item) — the two-positional-argument shape of
        # list.insert.  Keyed single-argument inserts (trie/table APIs
        # with other arities) are not flagged; a keyed API that happens
        # to take two arguments belongs in the baseline.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "insert"
            and len(node.args) == 2
            and not node.keywords
        ):
            return [
                ctx.finding(
                    self,
                    node,
                    "positional list.insert() shifts every later "
                    "element (O(N) per call); keep the sequence in an "
                    "order-maintaining container instead",
                )
            ]
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _INSORT_NAMES:
            return [
                ctx.finding(
                    self,
                    node,
                    f"bisect.{name}() is list.insert in disguise "
                    "(O(N) per call); use an order-maintaining "
                    "container for unbounded sequences",
                )
            ]
        return None

    def _check_membership(
        self, node: ast.Compare, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        # Mirrors DET003's heuristic: only comparators *statically
        # known* to be lists are flagged (displays, comprehensions,
        # list(...) calls); variables of list type are beyond a
        # single-pass syntactic check.
        findings = []
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if self._is_list_expr(comparator):
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "membership test against a list scans linearly "
                        "on every evaluation; use a set/frozenset",
                    )
                )
        return findings

    def _is_list_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "list":
                return True
        return False
