"""CONC — whole-program fork/thread safety rules.

The sharded HBG build (:mod:`repro.hbr.sharded`) forks worker
processes; the metrics endpoint (:mod:`repro.obs.serve`) handles
requests on pool threads.  Both concurrency boundaries have invisible
failure modes a per-file pass cannot see:

* **CONC001** — code reachable from a *fork worker* must not mutate
  state the parent will read back implicitly: writes to module-level
  globals vanish at join, metrics/recorder emissions land in the
  forked copy of the registry and are silently lost, and a lock
  acquired in a worker may have been captured mid-held from the
  parent.  Workers communicate through their return value, nothing
  else.
* **CONC002** — code reachable from an *HTTP handler thread* must
  only touch shared state through internally-synchronized APIs
  (:data:`SELF_SYNCHRONIZED`) or on a lock-serialized path.  The
  distinction is two-tier: the process-global
  :class:`~repro.obs.metrics.MetricsRegistry` is mutated by the owner
  thread *without* the server's render lock, so holding that lock is
  not enough — the registry itself must synchronize; objects *owned*
  by the server (health engine, ledger) are only ever touched under
  the render lock, so a locked path suffices.
* **CONC003** — a module-level mutable object written by functions
  reachable from two or more different pipeline packages is shared
  mutable state with no owner; once any stage goes concurrent the
  writes race.

Every finding carries the call chain from the concurrency entry point
to the offending site as evidence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Finding, Rule, Severity, register
from repro.lint.dataflow import ReachabilityAnalysis, reached_global_writes

#: Internal packages whose own functions are never *flagged* (obs is
#: the sanctioned process-global layer — its thread-safety contract is
#: what CONC002's catalogue encodes; lint is tooling).
_TOOL_MODULES = ("repro.lint.",)

#: Observability APIs that mutate process-global state; reaching one
#: from a fork worker silently drops the write at join.
OBS_MUTATORS = frozenset(
    {
        "repro.obs.metrics.MetricsRegistry.counter",
        "repro.obs.metrics.MetricsRegistry.gauge",
        "repro.obs.metrics.MetricsRegistry.histogram",
        "repro.obs.metrics.MetricsRegistry.clear",
        "repro.obs.metrics.Counter.inc",
        "repro.obs.metrics.Gauge.set",
        "repro.obs.metrics.Gauge.inc",
        "repro.obs.metrics.Gauge.dec",
        "repro.obs.metrics.Histogram.observe",
        "repro.obs.trace.recorder.FlightRecorder.record",
        "repro.obs.resources.ResourceLedger.register",
        "repro.obs.resources.ResourceLedger.refresh",
    }
)

#: Registry entry points whose *implementation* is internally
#: synchronized (a lock inside :class:`MetricsRegistry` — added when
#: this analyzer first flagged the unsynchronized iteration).  Calls
#: to anything registry-shaped outside this set from a handler thread
#: are CONC002 findings even on a lock-guarded path, because the
#: owner thread mutates the registry without that lock.
SELF_SYNCHRONIZED = frozenset(
    {
        "repro.obs.metrics.MetricsRegistry.counter",
        "repro.obs.metrics.MetricsRegistry.gauge",
        "repro.obs.metrics.MetricsRegistry.histogram",
        "repro.obs.metrics.MetricsRegistry.stopwatch",
        "repro.obs.metrics.MetricsRegistry.counters",
        "repro.obs.metrics.MetricsRegistry.gauges",
        "repro.obs.metrics.MetricsRegistry.histograms",
        "repro.obs.metrics.MetricsRegistry.all_metrics",
        "repro.obs.metrics.MetricsRegistry.sections",
        "repro.obs.metrics.MetricsRegistry.clear",
        "repro.obs.metrics.MetricsRegistry.__len__",
    }
)

#: Process-global shared APIs: a handler thread may only call the
#: :data:`SELF_SYNCHRONIZED` subset of these, lock or no lock.
PROCESS_GLOBAL_PREFIXES = ("repro.obs.metrics.MetricsRegistry.",)

#: Mutators on server-*owned* objects: safe from a handler thread iff
#: every path to the call runs under the owner's lock (the serialized
#: render path).
OWNED_MUTATORS = frozenset(
    {
        "repro.obs.health.HealthEngine.evaluate",
        "repro.obs.resources.ResourceLedger.refresh",
        "repro.obs.resources.ResourceLedger.register",
        "repro.obs.trace.recorder.FlightRecorder.record",
        "repro.obs.trace.recorder.FlightRecorder.clear",
        "repro.obs.profiler.DeterministicProfiler.publish",
    }
)

#: Pipeline packages for CONC003's "written from >= 2 stages" test.
PIPELINE_PACKAGES = frozenset(
    {
        "net",
        "protocols",
        "capture",
        "hbr",
        "snapshot",
        "verify",
        "repair",
        "whatif",
        "core",
        "analysis",
        "scenarios",
        "testkit",
        "cli",
    }
)


def _is_tool(module: str) -> bool:
    return module.startswith(_TOOL_MODULES)


def _package_of(module: str) -> str:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return ""


def _fn_finding(
    rule: Rule,
    project,
    qname: str,
    message: str,
    evidence: Tuple[str, ...],
) -> Finding:
    fn = project.functions[qname]
    return Finding(
        rule=rule.name,
        severity=rule.severity,
        path=fn.path,
        module=fn.module,
        line=fn.line,
        col=0,
        message=message,
        evidence=evidence,
    )


@register
class ForkSafetyRule(Rule):
    """CONC001: fork workers communicate via return values only."""

    name = "CONC001"
    severity = Severity.ERROR
    description = (
        "fork-worker-reachable code mutates state that does not survive "
        "the join: module globals, the process-global obs registry / "
        "recorder / ledger, or holds locks captured across the fork"
    )
    needs_project = True

    def finish_whole_program(self, project) -> Optional[Iterable[Finding]]:
        roots = project.fork_roots()
        if not roots:
            return None
        entries = [worker for worker, _spawner, _line in roots]
        spawners: Dict[str, str] = {}
        for worker, spawner, _line in roots:
            spawners.setdefault(worker, spawner)

        def evidence_for(qname: str) -> Tuple[str, ...]:
            """reach evidence, prefixed with the fork fan-out site."""
            chain = reach.chains.get(qname)
            hops = reach.evidence(qname)
            spawner = spawners.get(chain[0]) if chain else None
            if spawner is not None:
                return (f"forked by {project.describe(spawner)}",) + hops
            return hops

        reach = ReachabilityAnalysis(project, entries)
        findings: List[Finding] = []
        seen: Set[Tuple[str, str]] = set()

        # (a) module-global writes are lost when the worker exits.
        for global_q, writer, how, _line in reached_global_writes(project, reach):
            if _is_tool(project.functions[writer].module):
                continue
            key = (writer, f"g:{global_q}")
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                _fn_finding(
                    self,
                    project,
                    writer,
                    f"'{writer}' {how}s module global '{global_q}' but is "
                    "reachable from a fork worker; the write dies with the "
                    "worker process — return the data instead",
                    evidence_for(writer)
                    + (f"-> writes {project.describe(global_q)}",),
                )
            )

        # (b) obs emissions land in the forked registry copy.
        for qname in reach.reachable():
            fn = project.functions.get(qname)
            if fn is None or _is_tool(fn.module) or fn.module.startswith("repro.obs"):
                continue
            for edge in project.callees(qname):
                if edge.dst not in OBS_MUTATORS:
                    continue
                key = (qname, f"o:{edge.dst}")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    _fn_finding(
                        self,
                        project,
                        qname,
                        f"'{qname}' emits into process-global observability "
                        f"state ({edge.dst.rsplit('.', 2)[-2]}."
                        f"{edge.dst.rsplit('.', 1)[-1]}) but is reachable "
                        "from a fork worker; the sample lands in the forked "
                        "copy and is silently lost at join — aggregate in "
                        "the return value and emit in the parent",
                        evidence_for(qname)
                        + (f"-> calls {project.describe(edge.dst)}",),
                    )
                )

        # (c) lock usage inside a worker: the forked lock may have been
        # captured while held by a parent thread that no longer exists.
        for qname in reach.reachable():
            fn = project.functions.get(qname)
            if fn is None or _is_tool(fn.module):
                continue
            if any(site.locked for site in fn.calls):
                key = (qname, "lock")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    _fn_finding(
                        self,
                        project,
                        qname,
                        f"'{qname}' runs code under a lock but is reachable "
                        "from a fork worker; a lock captured across fork() "
                        "may be held forever by a thread that does not "
                        "exist in the child",
                        evidence_for(qname),
                    )
                )
        return findings


@register
class ThreadSafetyRule(Rule):
    """CONC002: handler threads need synchronized or serialized state."""

    name = "CONC002"
    severity = Severity.ERROR
    description = (
        "HTTP-handler-thread-reachable code touches shared state outside "
        "both the internally-synchronized API set and the lock-serialized "
        "render path"
    )
    needs_project = True

    def finish_whole_program(self, project) -> Optional[Iterable[Finding]]:
        roots = project.thread_roots()
        if not roots:
            return None
        entries = [entry for entry, _why, _line in roots]
        origins: Dict[str, str] = {}
        for entry, why, _line in roots:
            origins.setdefault(entry, why)

        def evidence_for(qname: str) -> Tuple[str, ...]:
            """reach evidence, prefixed with the thread entry's origin."""
            chain = reach.chains.get(qname)
            hops = reach.evidence(qname)
            origin = origins.get(chain[0]) if chain else None
            if origin is not None:
                return (f"thread entry via {project.describe(origin)}",) + hops
            return hops

        reach = ReachabilityAnalysis(project, entries)
        findings: List[Finding] = []
        seen: Set[Tuple[str, str]] = set()

        for qname in reach.reachable():
            fn = project.functions.get(qname)
            if fn is None or _is_tool(fn.module):
                continue
            for edge in project.callees(qname):
                # Tier 1: process-global registry — must self-synchronize.
                if edge.dst.startswith(PROCESS_GLOBAL_PREFIXES):
                    if edge.dst in SELF_SYNCHRONIZED:
                        continue
                    # Calls from within the registry's own class are
                    # its implementation, not a client.
                    if fn.module == "repro.obs.metrics":
                        continue
                    key = (qname, edge.dst)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        _fn_finding(
                            self,
                            project,
                            qname,
                            f"'{qname}' calls {edge.dst.rsplit('.', 2)[-2]}."
                            f"{edge.dst.rsplit('.', 1)[-1]} from an HTTP "
                            "handler thread, but the method is not in the "
                            "internally-synchronized set; the render lock "
                            "cannot help — the owner thread mutates the "
                            "registry without it",
                            evidence_for(qname)
                            + (f"-> calls {project.describe(edge.dst)}",),
                        )
                    )
                # Tier 2: server-owned mutables — a locked path suffices.
                elif edge.dst in OWNED_MUTATORS:
                    if reach.state.get(qname, False) or edge.locked:
                        continue
                    key = (qname, edge.dst)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        _fn_finding(
                            self,
                            project,
                            qname,
                            f"'{qname}' mutates server-owned state "
                            f"({edge.dst.rsplit('.', 2)[-2]}."
                            f"{edge.dst.rsplit('.', 1)[-1]}) from an HTTP "
                            "handler thread on a lock-free path; route it "
                            "through the lock-serialized render path",
                            evidence_for(qname)
                            + (f"-> calls {project.describe(edge.dst)}",),
                        )
                    )
            # Tier 3: raw module-global writes on an unlocked path.
            if fn.module.startswith("repro.obs"):
                continue
            for name, _line, how, locked in fn.global_writes:
                global_q = f"{fn.module}.{name}"
                if global_q not in project.globals:
                    continue
                if locked or reach.state.get(qname, False):
                    continue
                key = (qname, f"g:{global_q}")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    _fn_finding(
                        self,
                        project,
                        qname,
                        f"'{qname}' {how}s module global '{global_q}' from "
                        "an HTTP handler thread without holding a lock",
                        evidence_for(qname)
                        + (f"-> writes {project.describe(global_q)}",),
                    )
                )
        return findings


@register
class SharedGlobalRule(Rule):
    """CONC003: import-time mutables written from >= 2 pipeline stages."""

    name = "CONC003"
    severity = Severity.WARNING
    description = (
        "module-level mutable object is written by code reachable from "
        "two or more pipeline packages; ownerless shared state races as "
        "soon as any stage goes concurrent"
    )
    needs_project = True

    def finish_whole_program(self, project) -> Optional[Iterable[Finding]]:
        # Writers per mutable global (same-module writes only — the
        # extractor's precision boundary, documented in the rule guide).
        writers: Dict[str, Set[str]] = {}
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            for name, _line, _how, _locked in fn.global_writes:
                global_q = f"{fn.module}.{name}"
                info = project.globals.get(global_q)
                if info is None or not info.mutable:
                    continue
                writers.setdefault(global_q, set()).add(qname)

        findings: List[Finding] = []
        for global_q in sorted(writers):
            info = project.globals[global_q]
            # obs *is* the sanctioned process-global layer; lint is
            # tooling.  CONC002 owns obs thread-safety.
            if info.module.startswith(("repro.obs", "repro.lint")):
                continue
            stage_chains = self._stages_reaching(project, writers[global_q])
            stages = sorted(stage_chains)
            if len(stages) < 2:
                continue
            evidence: List[str] = [f"shared: {project.describe(global_q)}"]
            for stage in stages:
                chain = stage_chains[stage]
                evidence.append(
                    f"stage '{stage}': "
                    + " -> ".join(project.describe(hop) for hop in chain)
                )
            findings.append(
                Finding(
                    rule=self.name,
                    severity=self.severity,
                    path=project.location(global_q)[0],
                    module=info.module,
                    line=info.line,
                    col=0,
                    message=(
                        f"module global '{global_q}' is mutable and written "
                        f"from {len(stages)} pipeline stages "
                        f"({', '.join(stages)}); give it an owner or make "
                        "the stages communicate explicitly"
                    ),
                    evidence=tuple(evidence),
                )
            )
        return findings

    @staticmethod
    def _stages_reaching(
        project, writer_set: Set[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """Pipeline packages whose code *invokes* a writer, with a chain.

        Reverse BFS from the writers over the caller graph; for each
        package the lexicographically-first discovered chain (reaching
        function ... writer) is kept as the evidence witness.  The
        writers themselves contribute no stage — a helper executes its
        write on behalf of whoever calls it, so only caller packages
        count toward the >= 2 threshold.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[Tuple[str, Tuple[str, ...]]] = [
            (w, (w,)) for w in sorted(writer_set)
        ]
        visited: Set[str] = set()
        while queue:
            qname, chain = queue.pop(0)
            if qname in visited or len(chain) > 10:
                continue
            visited.add(qname)
            fn = project.functions.get(qname)
            if fn is not None and qname not in writer_set:
                stage = _package_of(fn.module)
                if stage in PIPELINE_PACKAGES:
                    current = chains.get(stage)
                    if current is None or chain < current:
                        chains[stage] = chain
            for edge in project.callers(qname):
                if edge.src not in visited:
                    queue.append((edge.src, (edge.src,) + chain))
        return chains
