"""OBS — instrumentation-coverage rules.

PR 1 instrumented every pipeline stage with :mod:`repro.obs`; the
``repro stats --require`` CI gate then catches *silently dead*
metric sections at runtime.  OBS001 closes the static half of that
loop: the designated stage entry points must keep carrying a span or
metric, so a refactor cannot drop instrumentation without either
updating the catalogue below or failing the lint pass.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.core import FileContext, Finding, Rule, Severity, register

#: module -> qualified names of functions that must be instrumented.
#: Keep in sync with docs/OBSERVABILITY.md's metric catalogue.
STAGE_ENTRY_POINTS: Dict[str, Sequence[str]] = {
    "repro.net.simulator": ("Simulator.run",),
    "repro.capture.collector": ("Collector.ingest",),
    "repro.hbr.inference": (
        "InferenceEngine.build_graph",
        "StreamingInference.observe",
    ),
    "repro.snapshot.base": ("DataPlaneSnapshot.from_fib_events",),
    "repro.snapshot.consistent": ("ConsistentSnapshotter.snapshot",),
    "repro.verify.verifier": ("DataPlaneVerifier.verify",),
    "repro.repair.provenance": ("ProvenanceTracer.trace",),
    "repro.core.pipeline": ("IntegratedControlPlane._guard",),
    "repro.testkit.runner": ("FuzzRunner.run",),
}

#: Names whose presence in a function body counts as instrumentation.
#: The canonical idiom binds ``registry = obs.get_registry()`` (or
#: uses ``obs.span`` / ``@obs.traced`` / ``obs.Stopwatch``), so a
#: reference to ``obs`` — or to an already-bound registry/tracer —
#: is the reliable witness.
_OBS_NAMES = frozenset({"obs", "registry", "tracer"})


def _collect_functions(
    tree: ast.AST,
) -> Dict[str, ast.AST]:
    """Map ``Class.method`` / ``function`` qualnames to their nodes."""
    found: Dict[str, ast.AST] = {}

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found[qualname] = child
                walk(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return found


def _references_obs(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _OBS_NAMES:
            return True
    return False


@register
class InstrumentationRule(Rule):
    """OBS001: stage entry points must carry a span or metric."""

    name = "OBS001"
    severity = Severity.ERROR
    description = (
        "pipeline-stage entry point carries no repro.obs span/metric "
        "(or the STAGE_ENTRY_POINTS catalogue is stale)"
    )
    # No per-node work: the whole check runs over the parsed tree once
    # per file, and only for modules in the catalogue.
    node_types = ()

    def __init__(
        self, entry_points: Optional[Dict[str, Sequence[str]]] = None
    ) -> None:
        self.entry_points = (
            entry_points if entry_points is not None else STAGE_ENTRY_POINTS
        )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module in self.entry_points

    def finish_file(self, ctx: FileContext) -> Optional[Iterable[Finding]]:
        functions = _collect_functions(ctx.tree)
        findings: List[Finding] = []
        for qualname in self.entry_points[ctx.module]:
            func = functions.get(qualname)
            if func is None:
                findings.append(
                    ctx.finding(
                        self,
                        ctx.tree,
                        f"configured stage entry point '{qualname}' not "
                        "found; update STAGE_ENTRY_POINTS in "
                        "repro/lint/rules/obs_rules.py",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not _references_obs(func):
                findings.append(
                    ctx.finding(
                        self,
                        func,
                        f"stage entry point '{qualname}' has no repro.obs "
                        "instrumentation (span, counter, histogram or "
                        "stopwatch)",
                    )
                )
        return findings
