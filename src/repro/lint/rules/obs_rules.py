"""OBS — instrumentation-coverage rules.

PR 1 instrumented every pipeline stage with :mod:`repro.obs`; the
``repro stats --require`` CI gate then catches *silently dead*
metric sections at runtime.  OBS001 closes the static half of that
loop: the designated stage entry points must keep carrying a span or
metric, so a refactor cannot drop instrumentation without either
updating the catalogue below or failing the lint pass.

The flight recorder (``repro.obs.trace``) extends the same contract:
every function in ``TRACE_SITES`` must reference the bound
``recorder`` so a refactor cannot silently drop a trace-event kind
from the causal record.  ``tests/test_trace.py`` additionally asserts
that the kinds listed here and the recorder's :class:`TraceKind` enum
cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.core import FileContext, Finding, Rule, Severity, register

#: module -> qualified names of functions that must be instrumented.
#: Keep in sync with docs/OBSERVABILITY.md's metric catalogue.
STAGE_ENTRY_POINTS: Dict[str, Sequence[str]] = {
    "repro.net.simulator": ("Simulator.run",),
    "repro.capture.collector": ("Collector.ingest",),
    "repro.hbr.inference": (
        "InferenceEngine.build_graph",
        "StreamingInference.observe",
    ),
    "repro.hbr.distributed": (
        "DistributedHbg.build_all",
        "DistributedHbg.merged_graph",
    ),
    "repro.snapshot.base": ("DataPlaneSnapshot.from_fib_events",),
    "repro.snapshot.consistent": ("ConsistentSnapshotter.snapshot",),
    "repro.verify.verifier": ("DataPlaneVerifier.verify",),
    "repro.verify.incremental": ("IncrementalVerifier.apply",),
    "repro.repair.provenance": ("ProvenanceTracer.trace",),
    "repro.core.pipeline": ("IntegratedControlPlane._guard",),
    "repro.testkit.runner": ("FuzzRunner.run",),
}

#: module -> (qualname, TraceKind member name) pairs: functions that
#: must record a flight-recorder event of that kind.  One entry per
#: :class:`repro.obs.trace.recorder.TraceKind` member — the drift
#: test in tests/test_trace.py enforces the bijection.
TRACE_SITES: Dict[str, Sequence[Tuple[str, str]]] = {
    "repro.net.simulator": (("Simulator.run", "SIM_EVENT"),),
    "repro.capture.collector": (("Collector.ingest", "IO_CAPTURED"),),
    "repro.hbr.inference": (
        ("InferenceEngine._edges_into", "HBR_EDGE"),
    ),
    "repro.snapshot.base": (
        ("DataPlaneSnapshot.from_fib_events", "SNAPSHOT_BUILD"),
    ),
    "repro.verify.verifier": (
        ("DataPlaneVerifier.verify", "VERIFY_VERDICT"),
    ),
    "repro.repair.provenance": (
        ("ProvenanceTracer.trace", "PROVENANCE_WALK"),
    ),
    "repro.repair.rollback": (("RepairEngine.repair", "ROLLBACK"),),
    "repro.obs.health": (("HealthEngine.evaluate", "HEALTH"),),
}

#: module -> (qualname, ledger component) pairs: functions that must
#: register a long-lived structure with the resource ledger.  One
#: entry per component in
#: :data:`repro.obs.resources.KNOWN_COMPONENTS` — the drift test in
#: tests/test_resources.py enforces the bijection.
LEDGER_SITES: Dict[str, Sequence[Tuple[str, str]]] = {
    "repro.hbr.graph": (("HappensBeforeGraph.__init__", "hbr.graph"),),
    # Registration moved out of __init__ into the explicit track()
    # opt-in so forked shard workers can build untracked indices
    # (CONC001 — a worker-side registration dies with the fork).
    "repro.hbr.index": (("EventIndex.track", "hbr.index"),),
    "repro.snapshot.consistent": (
        ("ConsistentSnapshotter.__init__", "snapshot.closure_cache"),
    ),
    "repro.obs.trace.recorder": (
        ("FlightRecorder.__init__", "obs.recorder"),
    ),
    "repro.obs.ledger": (("VerdictLedger.__init__", "obs.verdicts"),),
    "repro.testkit.runner": (("FuzzRunner.run", "testkit.corpus"),),
}

#: module -> (qualname, verdict kind) pairs: functions that must
#: append to the verdict ledger (:mod:`repro.obs.ledger`).  One entry
#: per kind in :data:`repro.obs.ledger.KINDS` — the drift test in
#: tests/test_verdicts.py enforces the bijection, so a refactor
#: cannot silently drop a verdict kind from the continuous record.
VERDICT_SITES: Dict[str, Sequence[Tuple[str, str]]] = {
    "repro.verify.verifier": (("DataPlaneVerifier.verify", "snapshot"),),
    "repro.verify.incremental": (
        ("IncrementalVerifier.apply", "incremental"),
    ),
    "repro.repair.rollback": (("RepairEngine.repair", "rollback"),),
}

#: Names whose presence in a function body counts as instrumentation.
#: The canonical idiom binds ``registry = obs.get_registry()`` (or
#: uses ``obs.span`` / ``@obs.traced`` / ``obs.Stopwatch``), so a
#: reference to ``obs`` — or to an already-bound registry/tracer —
#: is the reliable witness.
_OBS_NAMES = frozenset({"obs", "registry", "tracer"})

#: The witness for a trace site is the bound recorder itself: every
#: site follows ``recorder = obs.get_recorder()`` + one
#: ``recorder.enabled`` guard, so a mere ``obs`` reference (metrics
#: only) must NOT satisfy the trace-site check.
_TRACE_NAMES = frozenset({"recorder"})

#: Likewise for ledger registration sites: the canonical idiom binds
#: ``ledger = obs.get_ledger()`` and guards on ``ledger.enabled``, so
#: the bound ledger is the witness.
_LEDGER_NAMES = frozenset({"ledger"})

#: And for verdict sites: ``verdicts = obs.get_verdicts()`` plus one
#: ``verdicts.enabled`` guard, so the bound verdict ledger is the
#: witness (a metrics-only ``obs`` reference must not satisfy it).
_VERDICT_NAMES = frozenset({"verdicts"})


def _collect_functions(
    tree: ast.AST,
) -> Dict[str, ast.AST]:
    """Map ``Class.method`` / ``function`` qualnames to their nodes."""
    found: Dict[str, ast.AST] = {}

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found[qualname] = child
                walk(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return found


def _references_names(func: ast.AST, names: frozenset) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in names:
            return True
    return False


def _references_obs(func: ast.AST) -> bool:
    return _references_names(func, _OBS_NAMES)


@register
class InstrumentationRule(Rule):
    """OBS001: stage entry points must carry a span or metric."""

    name = "OBS001"
    severity = Severity.ERROR
    description = (
        "pipeline-stage entry point carries no repro.obs span/metric "
        "(or the STAGE_ENTRY_POINTS catalogue is stale)"
    )
    # No per-node work: the whole check runs over the parsed tree once
    # per file, and only for modules in the catalogue.
    node_types = ()

    def __init__(
        self,
        entry_points: Optional[Dict[str, Sequence[str]]] = None,
        trace_sites: Optional[Dict[str, Sequence[Tuple[str, str]]]] = None,
        ledger_sites: Optional[Dict[str, Sequence[Tuple[str, str]]]] = None,
        verdict_sites: Optional[Dict[str, Sequence[Tuple[str, str]]]] = None,
    ) -> None:
        self.entry_points = (
            entry_points if entry_points is not None else STAGE_ENTRY_POINTS
        )
        self.trace_sites = (
            trace_sites if trace_sites is not None else TRACE_SITES
        )
        self.ledger_sites = (
            ledger_sites if ledger_sites is not None else LEDGER_SITES
        )
        self.verdict_sites = (
            verdict_sites if verdict_sites is not None else VERDICT_SITES
        )

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.module in self.entry_points
            or ctx.module in self.trace_sites
            or ctx.module in self.ledger_sites
            or ctx.module in self.verdict_sites
        )

    def finish_file(self, ctx: FileContext) -> Optional[Iterable[Finding]]:
        functions = _collect_functions(ctx.tree)
        findings: List[Finding] = []
        for qualname in self.entry_points.get(ctx.module, ()):
            func = functions.get(qualname)
            if func is None:
                findings.append(
                    ctx.finding(
                        self,
                        ctx.tree,
                        f"configured stage entry point '{qualname}' not "
                        "found; update STAGE_ENTRY_POINTS in "
                        "repro/lint/rules/obs_rules.py",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not _references_obs(func):
                findings.append(
                    ctx.finding(
                        self,
                        func,
                        f"stage entry point '{qualname}' has no repro.obs "
                        "instrumentation (span, counter, histogram or "
                        "stopwatch)",
                    )
                )
        for qualname, kind in self.trace_sites.get(ctx.module, ()):
            func = functions.get(qualname)
            if func is None:
                findings.append(
                    ctx.finding(
                        self,
                        ctx.tree,
                        f"configured trace site '{qualname}' not found; "
                        "update TRACE_SITES in "
                        "repro/lint/rules/obs_rules.py",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not _references_names(func, _TRACE_NAMES):
                findings.append(
                    ctx.finding(
                        self,
                        func,
                        f"trace site '{qualname}' does not reference the "
                        f"flight recorder (must record TraceKind.{kind}; "
                        "bind it via obs.get_recorder())",
                    )
                )
        for qualname, component in self.ledger_sites.get(ctx.module, ()):
            func = functions.get(qualname)
            if func is None:
                findings.append(
                    ctx.finding(
                        self,
                        ctx.tree,
                        f"configured ledger site '{qualname}' not found; "
                        "update LEDGER_SITES in "
                        "repro/lint/rules/obs_rules.py",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not _references_names(func, _LEDGER_NAMES):
                findings.append(
                    ctx.finding(
                        self,
                        func,
                        f"ledger site '{qualname}' does not reference the "
                        f"resource ledger (must register component "
                        f"'{component}'; bind it via obs.get_ledger())",
                    )
                )
        for qualname, kind in self.verdict_sites.get(ctx.module, ()):
            func = functions.get(qualname)
            if func is None:
                findings.append(
                    ctx.finding(
                        self,
                        ctx.tree,
                        f"configured verdict site '{qualname}' not found; "
                        "update VERDICT_SITES in "
                        "repro/lint/rules/obs_rules.py",
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not _references_names(func, _VERDICT_NAMES):
                findings.append(
                    ctx.finding(
                        self,
                        func,
                        f"verdict site '{qualname}' does not reference the "
                        f"verdict ledger (must record kind '{kind}'; bind "
                        "it via obs.get_verdicts())",
                    )
                )
        return findings
