"""HYG — hygiene rules: failure modes Python makes easy to write.

These are not style nits; each one is a latent correctness bug:
mutable defaults alias state across calls, bare ``except`` swallows
``KeyboardInterrupt``/``SystemExit``, and ``assert`` disappears under
``python -O`` so a load-bearing check silently stops checking.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule, Severity, register

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict"}
)


def _is_test_code(ctx: FileContext) -> bool:
    # Module identity, not path: fixtures under tests/ may declare a
    # repro.* lint-module and must then be linted as library code.
    head = ctx.module.split(".")[0]
    return head == "tests" or head.startswith("test_") or head == "conftest"


@register
class MutableDefaultRule(Rule):
    """HYG001: mutable default argument values."""

    name = "HYG001"
    severity = Severity.ERROR
    description = (
        "mutable default argument; the object is shared across calls — "
        "default to None and create inside the function"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return None
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        findings: List[Finding] = []
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if mutable:
                label = (
                    node.name
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else "<lambda>"
                )
                findings.append(
                    ctx.finding(
                        self,
                        default,
                        f"mutable default argument in '{label}'; "
                        "use None and construct per call",
                    )
                )
        return findings


@register
class BareExceptRule(Rule):
    """HYG002: bare ``except:`` clauses."""

    name = "HYG002"
    severity = Severity.ERROR
    description = (
        "bare except swallows KeyboardInterrupt/SystemExit; catch "
        "Exception (or narrower) instead"
    )
    node_types = (ast.ExceptHandler,)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            return [
                ctx.finding(
                    self,
                    node,
                    "bare 'except:'; catch Exception or a narrower type",
                )
            ]
        return None


@register
class AssertInSourceRule(Rule):
    """HYG003: ``assert`` in shipped source (stripped under ``-O``)."""

    name = "HYG003"
    severity = Severity.ERROR
    description = (
        "assert in src/ is compiled away under python -O; raise an "
        "explicit exception for load-bearing checks"
    )
    node_types = (ast.Assert,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not _is_test_code(ctx)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if not isinstance(node, ast.Assert):
            return None
        return [
            ctx.finding(
                self,
                node,
                "'assert' in library code vanishes under -O; raise "
                "ValueError/RuntimeError explicitly",
            )
        ]


@register
class UnusedPragmaRule(Rule):
    """HYG004: ``lint-ignore`` pragmas that suppress nothing.

    A suppression that outlives its finding is a blind spot: the rule
    could fire again on that line and nobody would see it.  The
    *engine* emits this rule (it alone knows which pragma entries
    consumed a finding); this class exists so HYG004 has a registry
    entry, a severity, and documentation like every other rule.  A
    pragma entry is unused when it suppressed nothing AND the rule it
    names actually ran on the file — deep-only rule names are skipped
    in fast mode rather than reported, so a fast pre-commit pass never
    flags a pragma that the deep CI pass needs.
    """

    name = "HYG004"
    severity = Severity.WARNING
    description = (
        "lint-ignore pragma suppressed no finding; delete it (or fix "
        "the rule name) so suppressions cannot outlive their findings"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # Emission lives in the engine; the rule itself never visits.
        return not _is_test_code(ctx)
