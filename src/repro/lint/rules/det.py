"""DET — determinism rules.

The happens-before inference (§4.2 of the paper) is only trustworthy
if the I/O trace it consumes is faithful, which in this reproduction
means the simulator and capture layers are strictly deterministic:
logical clocks, injected seeded RNG, and order-stable iteration.
These rules machine-check that property on every commit.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule, Severity, register

#: Packages whose code must be deterministic: they produce (or shape)
#: the I/O trace that HBR inference consumes.
DET_PACKAGES = frozenset({"net", "protocols", "capture", "hbr"})

#: Modules whose import anywhere in a DET package means wall-clock
#: access.  ``repro.obs`` owns the only sanctioned clock (Stopwatch).
_CLOCK_MODULES = frozenset({"time", "datetime"})

#: The only constructor allowed from the ``random`` module: an
#: explicitly seeded (or explicitly injected) generator instance.
_ALLOWED_RANDOM_NAMES = frozenset({"Random"})

#: Methods that return sets regardless of receiver type — iterating
#: their result unsorted is order-unstable across processes.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


@register
class WallClockRule(Rule):
    """DET001: no wall-clock access in deterministic layers.

    Simulation semantics must come from the logical simulator clock;
    wall time for metrics comes from ``registry.stopwatch()`` /
    ``obs.Stopwatch`` so the clock stays quarantined in ``repro.obs``.
    """

    name = "DET001"
    severity = Severity.ERROR
    description = (
        "wall-clock import (time/datetime) in a deterministic layer; "
        "use the logical simulator clock or obs.Stopwatch"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.package in DET_PACKAGES

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        modules: List[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name.split(".")[0] for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                modules = [node.module.split(".")[0]]
        findings = []
        for module in modules:
            if module in _CLOCK_MODULES:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"deterministic layer '{ctx.package}' imports "
                        f"wall-clock module '{module}'; use the logical "
                        "sim clock or an obs.Stopwatch",
                    )
                )
        return findings


@register
class GlobalRandomRule(Rule):
    """DET002: no use of the process-global ``random`` RNG.

    The module-level functions share unseeded global state, so two
    call sites perturb each other and replays diverge.  Only
    ``random.Random(seed)`` instances (injected per run) are allowed.
    """

    name = "DET002"
    severity = Severity.ERROR
    description = (
        "module-level random.* call or import (shared unseeded state); "
        "inject a seeded random.Random instance instead"
    )
    node_types = (ast.ImportFrom, ast.Call)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.ImportFrom):
            if node.module != "random" or node.level != 0:
                return None
            return [
                ctx.finding(
                    self,
                    node,
                    f"'from random import {alias.name}' pulls in the "
                    "process-global RNG; use random.Random(seed)",
                )
                for alias in node.names
                if alias.name not in _ALLOWED_RANDOM_NAMES
            ]
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in _ALLOWED_RANDOM_NAMES
        ):
            return [
                ctx.finding(
                    self,
                    node,
                    f"random.{func.attr}() uses the process-global RNG; "
                    "use an injected random.Random(seed) instance",
                )
            ]
        return None


@register
class UnsortedSetIterationRule(Rule):
    """DET003: iteration over a set must go through ``sorted(...)``.

    Set iteration order depends on insertion history and element
    hashes (salted per process for strings), so any ordering-sensitive
    consumer — event scheduling, HBG edge construction — silently
    drifts between runs.  Wrapping the iterable in ``sorted()``
    removes the hazard (the ``for``/comprehension then iterates the
    sorted list, so no finding fires).

    Heuristic: only expressions that are *statically known* to be
    sets are flagged (set displays, ``set(...)``, set comprehensions,
    and ``.union()``-family calls); variables of set type are beyond
    a single-pass syntactic check and are documented as a limitation.
    """

    name = "DET003"
    severity = Severity.WARNING
    description = (
        "iteration over an unsorted set in ordering-sensitive code; "
        "wrap the iterable in sorted(...)"
    )
    node_types = (ast.For, ast.comprehension)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.package in DET_PACKAGES

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "set":
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
            ):
                return True
        return False

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if not isinstance(node, (ast.For, ast.comprehension)):
            return None
        iterable = node.iter
        if not self._is_set_expr(iterable):
            return None
        anchor = node if isinstance(node, ast.For) else iterable
        return [
            ctx.finding(
                self,
                anchor,
                "iterating an unsorted set in deterministic layer "
                f"'{ctx.package}'; wrap in sorted(...) to stabilise order",
            )
        ]
