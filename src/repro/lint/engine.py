"""The lint engine: file discovery, the single-pass walk, dispatch.

One run = one :class:`LintRunner`.  For every file the engine parses
the source once, asks each rule whether it applies, and then walks
the tree a single time, dispatching each node to the rules that
registered interest in its type.  File-level hooks run after the
walk; project-level hooks (the import-graph rules) run after the last
file.  Pragma suppression happens centrally so individual rules never
need to think about it — including for project-level and
whole-program findings, which are suppressed by a pragma on the line
they anchor to in their home file.

Two modes:

* **fast** (default) — the syntactic single-file pass plus the
  import-graph project rules.  Whole-program rules (``needs_project``)
  are excluded entirely.
* **deep** (``LintRunner(deep=True)`` / ``repro lint --deep``) — the
  fast pass *plus* the resolved call graph
  (:mod:`repro.lint.callgraph`) and the dataflow rule family
  (DET100/CONC001-003), with per-finding call-chain evidence.  Deep
  results are cached by content hash (:mod:`repro.lint.cache`) so a
  warm run costs only the syntactic pass.

The engine is itself instrumented with :mod:`repro.obs` — ``repro
--metrics lint`` reports files scanned, findings per rule, wall time,
and ``lint.analysis_seconds`` for the whole-program phase.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Type,
)

from repro import obs
from repro.lint.cache import AnalysisCache, cache_key, file_digest
from repro.lint.core import (
    IGNORE_ALL,
    RULE_REGISTRY,
    FileContext,
    Finding,
    Rule,
    Severity,
    default_rules,
    scan_module_directive,
    scan_pragmas,
)


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline application)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed_by_pragma: int = 0
    #: True/False when a deep run hit/missed the analysis cache;
    #: ``None`` for fast runs.
    cache_hit: Optional[bool] = None
    #: Wall seconds spent in the whole-program phase (0.0 when fast).
    analysis_seconds: float = 0.0

    def by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def worst(self) -> Optional[Severity]:
        return max(
            (f.severity for f in self.findings), default=None
        )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen = {}
    for path in paths:
        if os.path.isfile(path):
            seen[os.path.normpath(path)] = True
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames if d != "__pycache__"
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        seen[
                            os.path.normpath(os.path.join(dirpath, filename))
                        ] = True
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    Walks the path for a ``repro`` package component (the layout is
    ``src/repro/...``); anything outside the package lints under its
    bare stem unless the file declares ``# repro: lint-module=...``.
    """
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    if "repro" in parts:
        index = parts.index("repro")
        dotted = parts[index:]
        dotted[-1] = dotted[-1][:-3]  # strip .py
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return os.path.basename(normalized)[:-3]


class LintRunner:
    """Drives a rule set over a file list in a single AST pass each."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        *,
        deep: bool = False,
        cache_dir: Optional[str] = None,
    ):
        all_rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )
        self.deep = deep
        #: Whole-program rules run only in deep mode; in fast mode they
        #: are dropped entirely (so HYG004 never counts them as "ran").
        self.deep_rules: List[Rule] = [
            r for r in all_rules if r.needs_project
        ]
        self.rules: List[Rule] = [
            r for r in all_rules if not r.needs_project
        ]
        self.cache = (
            AnalysisCache(cache_dir) if (deep and cache_dir) else None
        )
        #: path -> FileContext for every parsed file of the run; the
        #: whole-program phase and pragma suppression read this.
        self._contexts: Dict[str, FileContext] = {}
        #: path -> sha256 of the source (the analysis-cache key input).
        self._digests: Dict[str, str] = {}
        self._hyg004 = next(
            (r for r in self.rules if r.name == "HYG004"), None
        )

    # -- public API --------------------------------------------------------

    def run_paths(
        self,
        paths: Sequence[str],
        restrict_to: Optional[Set[str]] = None,
    ) -> LintResult:
        """Lint ``paths``; with ``restrict_to``, dispatch single-file
        rules only on those files (``repro lint --changed``) while
        still parsing everything so whole-program and import-graph
        analyses see the full picture.
        """
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        result = LintResult()
        if restrict_to is not None:
            # Absolute on both sides: callers hand in git-toplevel
            # paths while discover_files yields whatever form `paths`
            # used, and a form mismatch must not silently restrict
            # every file.
            restrict_to = {os.path.abspath(p) for p in restrict_to}
        with obs.span("lint.run"):
            for path in discover_files(paths):
                restricted = restrict_to is not None and (
                    os.path.abspath(path) not in restrict_to
                )
                # A restricted file still needs parsing when a later
                # phase consumes every tree; otherwise skip it whole.
                if restricted and not (self.deep or self._has_project_rules()):
                    continue
                self._lint_file(path, result, dispatch=not restricted)
            self._finish_project(result, restrict_to)
            if self.deep:
                self._finish_whole_program(result)
            self._emit_unused_pragmas(result, restrict_to)
        if registry.enabled:
            registry.counter("lint.runs_total").inc()
            registry.histogram("lint.run_seconds").observe(watch.elapsed())
            registry.gauge("lint.files_scanned").set(result.files_scanned)
            if self.deep:
                registry.histogram("lint.analysis_seconds").observe(
                    result.analysis_seconds
                )
                if result.cache_hit is not None:
                    registry.counter(
                        "lint.deep_cache_total",
                        outcome="hit" if result.cache_hit else "miss",
                    ).inc()
            for finding in result.findings:
                registry.counter(
                    "lint.findings_total", rule=finding.rule
                ).inc()
        return result

    def run_source(
        self, source: str, path: str = "<string>", module: str = ""
    ) -> LintResult:
        """Lint one in-memory source blob (tests, fixtures, tooling)."""
        result = LintResult()
        self._lint_source(source, path, result, module=module)
        self._finish_project(result, None)
        if self.deep:
            self._finish_whole_program(result)
        self._emit_unused_pragmas(result, None)
        return result

    # -- internals ---------------------------------------------------------

    def _has_project_rules(self) -> bool:
        return any(
            type(r).finish_project is not Rule.finish_project
            for r in self.rules
        )

    def _lint_file(
        self, path: str, result: LintResult, dispatch: bool = True
    ) -> None:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=path,
                    module="",
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            return
        self._lint_source(source, path, result, dispatch=dispatch)

    def _lint_source(
        self,
        source: str,
        path: str,
        result: LintResult,
        module: str = "",
        dispatch: bool = True,
    ) -> None:
        lines = source.splitlines()
        declared = scan_module_directive(lines)
        module = declared or module or module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=path,
                    module=module,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            return
        ctx = FileContext(
            path=path,
            module=module,
            tree=tree,
            lines=lines,
            pragmas=scan_pragmas(lines),
        )
        self._contexts[path] = ctx
        if self.deep:
            self._digests[path] = file_digest(source.encode("utf-8"))
        if not dispatch:
            # Parsed for the cross-file phases only (--changed): the
            # single-file rules do not run and files_scanned does not
            # count it.
            self._record_project_edges(ctx, result)
            return
        result.files_scanned += 1
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return
        ctx.rules_ran.update(rule.name for rule in active)
        if self.deep:
            ctx.rules_ran.update(
                rule.name
                for rule in self.deep_rules
                if rule.applies_to(ctx)
            )
        node_dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                node_dispatch.setdefault(node_type, []).append(rule)
        if node_dispatch:
            self._walk(tree, node_dispatch, ctx, result)
        for rule in active:
            self._collect(rule.finish_file(ctx), ctx, result)

    def _walk(
        self,
        tree: ast.AST,
        node_dispatch: Dict[Type[ast.AST], List[Rule]],
        ctx: FileContext,
        result: LintResult,
    ) -> None:
        """Hand-rolled DFS — measurably faster than :func:`ast.walk`
        (no generator frames, no per-node ``iter_child_nodes``); node
        visit order is not part of the rule contract.
        """
        get = node_dispatch.get
        collect = self._collect
        stack = [tree]
        push = stack.append
        while stack:
            node = stack.pop()
            interested = get(node.__class__)
            if interested is not None:
                for rule in interested:
                    collect(rule.visit(node, ctx), ctx, result)
            for name in node._fields:
                child = getattr(node, name, None)
                child_cls = child.__class__
                if child_cls is list:
                    for item in child:
                        if isinstance(item, ast.AST):
                            push(item)
                elif isinstance(child, ast.AST):
                    push(child)

    def _record_project_edges(
        self, ctx: FileContext, result: LintResult
    ) -> None:
        """Feed a non-dispatched (--changed-skipped) file to project
        rules that accumulate cross-file state via ``visit`` (the
        import-graph family), without emitting its per-file findings.
        """
        sink = LintResult()
        recorders = [
            rule
            for rule in self.rules
            if type(rule).finish_project is not Rule.finish_project
            and rule.applies_to(ctx)
        ]
        if not recorders:
            return
        node_dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in recorders:
            for node_type in rule.node_types:
                node_dispatch.setdefault(node_type, []).append(rule)
        if node_dispatch:
            self._walk(ctx.tree, node_dispatch, ctx, sink)
        # Per-file findings from unchanged files are dropped by
        # design; only the accumulated project state matters.

    def _finish_project(
        self, result: LintResult, restrict_to: Optional[Set[str]]
    ) -> None:
        for rule in self.rules:
            produced = rule.finish_project()
            if not produced:
                continue
            for finding in produced:
                if restrict_to is not None and (
                    os.path.abspath(finding.path) not in restrict_to
                ):
                    continue
                ctx = self._contexts.get(finding.path)
                if ctx is not None and ctx.suppressed(
                    finding.rule, finding.line
                ):
                    result.suppressed_by_pragma += 1
                else:
                    result.findings.append(finding)

    # -- deep mode ---------------------------------------------------------

    def _finish_whole_program(self, result: LintResult) -> None:
        # perf_counter, not obs.Stopwatch: analysis_seconds feeds the
        # CLI summary (and the bench gate) even when obs is disabled.
        started = time.perf_counter()
        from repro.lint.callgraph import build_project

        repro_ctxs = {
            path: ctx
            for path, ctx in sorted(self._contexts.items())
            if ctx.module == "repro" or ctx.module.startswith("repro.")
        }
        key = cache_key(
            (path, self._digests[path])
            for path in repro_ctxs
            if path in self._digests
        )
        cached = self.cache.load(key) if self.cache is not None else None
        if cached is not None:
            result.cache_hit = True
            payload_findings = cached
            # Replay pragma consumption so HYG004 is warm/cold-stable.
            for finding in payload_findings:
                if finding.rule == "_PRAGMA_HIT":
                    ctx = self._contexts.get(finding.path)
                    if ctx is not None:
                        ctx.pragma_hits.add((finding.line, finding.message))
                    result.suppressed_by_pragma += 1
                else:
                    result.findings.append(finding)
            result.analysis_seconds = time.perf_counter() - started
            return
        if self.cache is not None:
            result.cache_hit = False  # None = cache disabled entirely
        with obs.span("lint.whole_program"):
            project = build_project(
                [
                    (path, ctx.module, ctx.tree)
                    for path, ctx in repro_ctxs.items()
                ]
            )
            produced: List[Finding] = []
            for rule in self.deep_rules:
                findings = rule.finish_whole_program(project)
                if findings:
                    produced.extend(findings)
        kept: List[Finding] = []
        stored: List[Finding] = []
        for finding in sorted(
            produced, key=lambda f: (f.path, f.line, f.rule, f.message)
        ):
            ctx = self._contexts.get(finding.path)
            if ctx is not None and ctx.suppressed(finding.rule, finding.line):
                result.suppressed_by_pragma += 1
                # Record the consumed pragma entry in the cache as a
                # sentinel pseudo-finding so warm runs replay it.
                name = (
                    finding.rule
                    if (finding.line, finding.rule) in ctx.pragma_hits
                    else IGNORE_ALL
                )
                stored.append(
                    Finding(
                        rule="_PRAGMA_HIT",
                        severity=Severity.INFO,
                        path=finding.path,
                        module=finding.module,
                        line=finding.line,
                        col=0,
                        message=name,
                    )
                )
            else:
                kept.append(finding)
                stored.append(finding)
        result.findings.extend(kept)
        if self.cache is not None:
            self.cache.store(key, stored)
        result.analysis_seconds = time.perf_counter() - started

    # -- unused-pragma reporting (HYG004) ----------------------------------

    def _emit_unused_pragmas(
        self, result: LintResult, restrict_to: Optional[Set[str]]
    ) -> None:
        rule = self._hyg004
        if rule is None:
            return
        for path in sorted(self._contexts):
            if restrict_to is not None and (
                os.path.abspath(path) not in restrict_to
            ):
                continue
            ctx = self._contexts[path]
            if not ctx.pragmas or not rule.applies_to(ctx):
                continue
            for line in sorted(ctx.pragmas):
                for name in sorted(ctx.pragmas[line]):
                    if (line, name) in ctx.pragma_hits:
                        continue
                    if name == IGNORE_ALL:
                        # Wildcards count as used when *any* rule was
                        # consumed on the line.
                        if any(hit[0] == line for hit in ctx.pragma_hits):
                            continue
                    elif name in RULE_REGISTRY and name not in ctx.rules_ran:
                        # The named rule did not run on this file
                        # (deep-only rule in fast mode, or an
                        # applies_to() opt-out) — not evidence of an
                        # unused pragma.
                        continue
                    finding = Finding(
                        rule=rule.name,
                        severity=rule.severity,
                        path=ctx.path,
                        module=ctx.module,
                        line=line,
                        col=0,
                        message=(
                            f"lint-ignore[{name}] suppressed nothing"
                            if name == IGNORE_ALL or name in RULE_REGISTRY
                            else f"lint-ignore[{name}] suppressed nothing "
                            "(unknown rule name)"
                        ),
                    )
                    self._collect([finding], ctx, result)

    @staticmethod
    def _collect(
        produced: Optional[Iterable[Finding]],
        ctx: FileContext,
        result: LintResult,
    ) -> None:
        if not produced:
            return
        for finding in produced:
            if ctx.suppressed(finding.rule, finding.line):
                result.suppressed_by_pragma += 1
            else:
                result.findings.append(finding)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable display order: severity desc, then path, line, rule."""
    return sorted(
        findings,
        key=lambda f: (-int(f.severity), f.path, f.line, f.rule, f.message),
    )
