"""The lint engine: file discovery, the single-pass walk, dispatch.

One run = one :class:`LintRunner`.  For every file the engine parses
the source once, asks each rule whether it applies, and then walks
the tree a single time, dispatching each node to the rules that
registered interest in its type.  File-level hooks run after the
walk; project-level hooks (the import-graph rules) run after the last
file.  Pragma suppression happens centrally so individual rules never
need to think about it.

The engine is itself instrumented with :mod:`repro.obs` — ``repro
--metrics lint`` reports files scanned, findings per rule, and wall
time like any other pipeline stage.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro import obs
from repro.lint.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    default_rules,
    scan_module_directive,
    scan_pragmas,
)


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline application)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed_by_pragma: int = 0

    def by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def worst(self) -> Optional[Severity]:
        return max(
            (f.severity for f in self.findings), default=None
        )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen = {}
    for path in paths:
        if os.path.isfile(path):
            seen[os.path.normpath(path)] = True
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames if d != "__pycache__"
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        seen[
                            os.path.normpath(os.path.join(dirpath, filename))
                        ] = True
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    Walks the path for a ``repro`` package component (the layout is
    ``src/repro/...``); anything outside the package lints under its
    bare stem unless the file declares ``# repro: lint-module=...``.
    """
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    if "repro" in parts:
        index = parts.index("repro")
        dotted = parts[index:]
        dotted[-1] = dotted[-1][:-3]  # strip .py
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return os.path.basename(normalized)[:-3]


class LintRunner:
    """Drives a rule set over a file list in a single AST pass each."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )

    # -- public API --------------------------------------------------------

    def run_paths(self, paths: Sequence[str]) -> LintResult:
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        result = LintResult()
        with obs.span("lint.run"):
            for path in discover_files(paths):
                self._lint_file(path, result)
            self._finish_project(result)
        if registry.enabled:
            registry.counter("lint.runs_total").inc()
            registry.histogram("lint.run_seconds").observe(watch.elapsed())
            registry.gauge("lint.files_scanned").set(result.files_scanned)
            for finding in result.findings:
                registry.counter(
                    "lint.findings_total", rule=finding.rule
                ).inc()
        return result

    def run_source(
        self, source: str, path: str = "<string>", module: str = ""
    ) -> LintResult:
        """Lint one in-memory source blob (tests, fixtures, tooling)."""
        result = LintResult()
        self._lint_source(source, path, result, module=module)
        self._finish_project(result)
        return result

    # -- internals ---------------------------------------------------------

    def _lint_file(self, path: str, result: LintResult) -> None:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=path,
                    module="",
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            return
        self._lint_source(source, path, result)

    def _lint_source(
        self,
        source: str,
        path: str,
        result: LintResult,
        module: str = "",
    ) -> None:
        lines = source.splitlines()
        declared = scan_module_directive(lines)
        module = declared or module or module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=path,
                    module=module,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            return
        ctx = FileContext(
            path=path,
            module=module,
            tree=tree,
            lines=lines,
            pragmas=scan_pragmas(lines),
        )
        result.files_scanned += 1
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            for node in ast.walk(tree):
                interested = dispatch.get(type(node))
                if not interested:
                    continue
                for rule in interested:
                    self._collect(rule.visit(node, ctx), ctx, result)
        for rule in active:
            self._collect(rule.finish_file(ctx), ctx, result)

    def _finish_project(self, result: LintResult) -> None:
        for rule in self.rules:
            produced = rule.finish_project()
            if not produced:
                continue
            # Project-level findings carry their own path; pragma
            # suppression does not apply (no single source line owns
            # a cross-file property).
            result.findings.extend(produced)

    @staticmethod
    def _collect(
        produced: Optional[Iterable[Finding]],
        ctx: FileContext,
        result: LintResult,
    ) -> None:
        if not produced:
            return
        for finding in produced:
            if ctx.suppressed(finding.rule, finding.line):
                result.suppressed_by_pragma += 1
            else:
                result.findings.append(finding)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable display order: severity desc, then path, line, rule."""
    return sorted(
        findings,
        key=lambda f: (-int(f.severity), f.path, f.line, f.rule, f.message),
    )
