"""Content-hash cache for whole-program analysis results.

The deep pass (call graph + dataflow) costs a few seconds over
``src/repro``; its output depends only on the *content* of the files
analysed and the analyzer version.  The cache key is therefore::

    sha256(ANALYSIS_VERSION · (relpath, sha256(content))* sorted)

A hit replays the stored post-pragma findings verbatim (baseline
application still happens downstream, so editing the baseline never
invalidates the cache).  Entries are JSON, one file per key, pruned
to the most recent :data:`MAX_ENTRIES` by mtime.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.core import Finding

#: Bump whenever rule logic, the call-graph builder, or the dataflow
#: engine changes meaning for identical sources.
ANALYSIS_VERSION = "deep-v1"

#: Default cache directory name, created next to the lint baseline.
CACHE_DIR_NAME = ".repro-lint-cache"

MAX_ENTRIES = 8


def file_digest(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def cache_key(entries: Iterable[Tuple[str, str]]) -> str:
    """Key from (relpath, content digest) pairs; order-insensitive."""
    hasher = hashlib.sha256(ANALYSIS_VERSION.encode("utf-8"))
    for path, digest in sorted(entries):
        hasher.update(b"\x00")
        hasher.update(path.encode("utf-8"))
        hasher.update(b"\x01")
        hasher.update(digest.encode("ascii"))
    return hasher.hexdigest()


class AnalysisCache:
    """Tiny JSON file store for deep-pass findings."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[List[Finding]]:
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != ANALYSIS_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            return None
        try:
            findings = [Finding.from_dict(f) for f in payload["findings"]]
        except (KeyError, TypeError, ValueError):
            return None
        # Refresh mtime so the LRU prune keeps hot entries.
        try:
            os.utime(self._path(key))
        except OSError:
            pass
        return findings

    def store(self, key: str, findings: Sequence[Finding]) -> None:
        payload: Dict[str, object] = {
            "version": ANALYSIS_VERSION,
            "findings": [f.to_dict() for f in findings],
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = self._path(key) + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self._path(key))
        except OSError:
            return
        self._prune()

    def _prune(self) -> None:
        try:
            names = [
                n for n in os.listdir(self.directory) if n.endswith(".json")
            ]
        except OSError:
            return
        if len(names) <= MAX_ENTRIES:
            return
        stamped = []
        for name in names:
            full = os.path.join(self.directory, name)
            try:
                stamped.append((os.path.getmtime(full), name, full))
            except OSError:
                continue
        stamped.sort(reverse=True)
        for _mtime, _name, full in stamped[MAX_ENTRIES:]:
            try:
                os.remove(full)
            except OSError:
                pass
