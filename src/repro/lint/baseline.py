"""Committed-baseline support: grandfather existing findings.

A baseline is a JSON document mapping finding fingerprints (see
:meth:`repro.lint.core.Finding.fingerprint`) to a count.  Findings
matched by the baseline are suppressed up to that count — so a file
with two grandfathered violations fails the build the moment a third
appears.  Baseline entries that no longer match anything are reported
as *stale* so the debt record shrinks as code is fixed.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.lint.core import Finding

BASELINE_VERSION = 1

#: Conventional baseline filename, committed at the repo root.
BASELINE_FILENAME = "lint-baseline.json"


def save(path: str, findings: Iterable[Finding]) -> int:
    """Write a baseline covering ``findings``; returns the entry count."""
    counts: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    document = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` findings. Entries are "
            "fingerprints (rule|path|message) with a multiplicity; "
            "remove entries as the underlying debt is paid down. "
            "Regenerate with: repro lint --write-baseline"
        ),
        "findings": dict(sorted(counts.items())),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return sum(counts.values())


def load(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed count.  Raises on malformed documents."""
    with open(path) as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), dict)
    ):
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} lint baseline document"
        )
    findings = document["findings"]
    for key, value in findings.items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise ValueError(f"{path}: malformed baseline entry {key!r}")
    return dict(findings)


def apply(
    findings: Iterable[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int, List[str]]:
    """Split findings against a baseline.

    Returns ``(new_findings, suppressed_count, stale_fingerprints)``:
    findings beyond each fingerprint's allowance are *new*; baseline
    entries never consumed at all are *stale*.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    suppressed = 0
    for finding in findings:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed += 1
        else:
            new.append(finding)
    stale = sorted(
        fp
        for fp, allowed in remaining.items()
        if allowed == baseline.get(fp, 0) and allowed > 0
    )
    return new, suppressed, stale
