"""repro — Integrating Verification and Repair into the Control Plane.

A faithful, laptop-scale reproduction of Gember-Jacobson, Raiciu and
Vanbever's HotNets-XVI (2017) position paper.  The package provides:

* a deterministic discrete-event network simulator with full BGP
  (vendor-profiled decision process, iBGP, soft reconfiguration,
  Add-Path) and OSPF engines (:mod:`repro.net`,
  :mod:`repro.protocols`);
* control-plane I/O capture (:mod:`repro.capture`);
* happens-before relationship inference and the happens-before graph
  (:mod:`repro.hbr`);
* HBG-consistent data-plane snapshots (:mod:`repro.snapshot`);
* centralized and distributed data-plane verification
  (:mod:`repro.verify`);
* provenance tracing, root-cause rollback, and outcome prediction
  (:mod:`repro.repair`);
* the integrated Fig.-3 pipeline (:mod:`repro.core`);
* the paper's example scenarios (:mod:`repro.scenarios`).

Quick start::

    from repro.core import IntegratedControlPlane, PipelineMode
    from repro.scenarios import Fig2Scenario, paper_policy
    from repro.scenarios.fig2 import bad_lp_change

    scenario = Fig2Scenario()
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net, [paper_policy()], mode=PipelineMode.REPAIR
    ).arm()
    net.apply_config_change(bad_lp_change())
    net.run(120)
    print(pipeline.summary())
"""

__version__ = "1.0.0"

from repro.net.addr import Prefix
from repro.core.pipeline import IntegratedControlPlane, PipelineMode

__all__ = ["IntegratedControlPlane", "PipelineMode", "Prefix", "__version__"]
