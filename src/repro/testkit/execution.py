"""Planning and paired execution of fuzz cases.

:func:`plan_case` expands a :class:`~repro.testkit.case.FuzzCase`
into an explicit :class:`~repro.testkit.case.CasePlan` (the same
draw for the same case, forever).  :func:`execute_plan` replays a
plan through a fresh simulated network and returns an
:class:`Execution` carrying everything the differential oracles
need: the live network, the captured event trace, the verifier's
lagged view, and ground-truth data-plane snapshots taken *during*
the run (the simulator can only be observed at "now", so probes are
recorded in-flight).

Every execution resets the global event-id counter, so two
executions of the same plan produce byte-identical traces — the
invariant behind the replay-determinism oracle and the run digest.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.capture.io_events import IOEvent, reset_event_ids
from repro.net.config import ConfigChange, local_pref_map
from repro.protocols.network import Network
from repro.scenarios.generators import (
    UplinkSpec,
    attach_uplinks,
    build_random_network,
    external_prefixes,
    random_connected_topology,
)
from repro.snapshot.base import DataPlaneSnapshot, VerifierView
from repro.testkit.case import CasePlan, FuzzCase, PlannedEvent, normalize_events

#: Misconfig local-pref values, the same palette misconfig_campaign
#: draws from: below 100 inverts the uplink preference order, above
#: it usually preserves it.
_MISCONFIG_LOCAL_PREFS = (5, 10, 50, 150, 250, 300)

#: Number of mid-run ground-truth probes per case.
_PROBES = 3


def uplink_map_name(router: str) -> str:
    """The route-map name build_random_network gives an uplink."""
    return f"{router.lower()}-uplink-lp"


def plan_case(case: FuzzCase) -> CasePlan:
    """Deterministically expand a case into an explicit workload."""
    rng = random.Random(f"repro.testkit/{case.seed}")
    topo = random_connected_topology(
        case.routers,
        extra_edge_fraction=case.extra_edge_fraction,
        seed=case.seed,
    )
    specs = attach_uplinks(topo, case.uplinks, seed=case.seed)
    internal = set(topo.internal_routers())
    internal_links = sorted(
        (link.a.router, link.b.router)
        for link in topo.links.values()
        if link.a.router in internal and link.b.router in internal
    )

    events: List[PlannedEvent] = []
    # Baseline: every uplink announces every prefix shortly after
    # startup.  Explicit (rather than implied) so the shrinker can
    # remove baseline routes a failure does not depend on.
    when = 1.0
    for spec in specs:
        for index in range(case.prefixes):
            events.append(
                PlannedEvent(
                    time=round(when, 6),
                    kind="announce",
                    actor=spec.external,
                    prefix_index=index,
                )
            )
            when += 0.05

    holdings: Dict[str, set] = {
        spec.external: set(range(case.prefixes)) for spec in specs
    }
    when = case.start
    for _ in range(case.churn_events):
        when += rng.expovariate(1.0 / case.mean_gap)
        spec = rng.choice(specs)
        live = holdings[spec.external]
        if live and rng.random() < 0.4:
            index = rng.choice(sorted(live))
            live.discard(index)
            kind = "withdraw"
        else:
            index = rng.randrange(case.prefixes)
            live.add(index)
            kind = "announce"
        events.append(
            PlannedEvent(
                time=round(when, 6),
                kind=kind,
                actor=spec.external,
                prefix_index=index,
            )
        )
    window_end = max(when, case.start + 1.0)

    if internal_links:
        for _ in range(case.flap_events):
            down_at = case.start + rng.random() * (window_end - case.start)
            a, b = rng.choice(internal_links)
            events.append(
                PlannedEvent(
                    time=round(down_at, 6), kind="link_down", actor=f"{a}|{b}"
                )
            )
            events.append(
                PlannedEvent(
                    time=round(down_at + case.down_time, 6),
                    kind="link_up",
                    actor=f"{a}|{b}",
                )
            )

    for _ in range(case.misconfig_rounds):
        at = case.start + rng.random() * (window_end - case.start)
        spec = rng.choice(specs)
        events.append(
            PlannedEvent(
                time=round(at, 6),
                kind="misconfig",
                actor=spec.router,
                local_pref=rng.choice(_MISCONFIG_LOCAL_PREFS),
            )
        )

    ordered = normalize_events(events)
    last = max((e.time for e in ordered), default=case.start)
    span = max(last - case.start, 1.0)
    probes = tuple(
        round(case.start + span * (i + 1) / (_PROBES + 1), 6)
        for i in range(_PROBES)
    )
    return CasePlan(case=case, events=ordered, probe_times=probes)


@dataclass
class Execution:
    """One completed run of a plan, ready for oracle inspection."""

    plan: CasePlan
    network: Network
    specs: List[UplinkSpec]
    prefixes: List
    view: VerifierView
    #: (simulated time, oracle snapshot straight from the live FIBs).
    truth_probes: List[Tuple[float, DataPlaneSnapshot]]
    final_live: DataPlaneSnapshot
    end_time: float

    @property
    def internal_routers(self) -> List[str]:
        return self.network.topology.internal_routers()

    def events(self) -> List[IOEvent]:
        return self.network.collector.all_events()


def execute_plan(plan: CasePlan) -> Execution:
    """Replay a plan from scratch; deterministic per plan."""
    case = plan.case
    reset_event_ids()
    network, specs = build_random_network(
        case.routers,
        uplinks=case.uplinks,
        seed=case.seed,
        extra_edge_fraction=case.extra_edge_fraction,
        deterministic_bgp=True,
    )
    network.start()
    prefixes = external_prefixes(case.prefixes)
    uplink_by_router = {spec.router: spec for spec in specs}

    for event in plan.events:
        if event.kind == "announce":
            network.announce_prefix(
                event.actor, prefixes[event.prefix_index], at=event.time
            )
        elif event.kind == "withdraw":
            network.withdraw_prefix(
                event.actor, prefixes[event.prefix_index], at=event.time
            )
        elif event.kind in ("link_down", "link_up"):
            a, b = event.actor.split("|", 1)
            network.set_link_status(
                a, b, up=(event.kind == "link_up"), at=event.time
            )
        elif event.kind == "misconfig":
            spec = uplink_by_router.get(event.actor)
            if spec is None:
                raise ValueError(
                    f"misconfig event targets {event.actor}, which has no "
                    "uplink route-map in this topology"
                )
            map_name = uplink_map_name(event.actor)
            network.apply_config_change(
                ConfigChange(
                    event.actor,
                    "set_route_map",
                    key=map_name,
                    value=local_pref_map(map_name, event.local_pref),
                    description=(
                        f"fuzzed local-pref {event.local_pref} on "
                        f"{event.actor}"
                    ),
                ),
                at=event.time,
            )

    end = plan.end_time
    truth_probes: List[Tuple[float, DataPlaneSnapshot]] = []
    for probe in sorted(plan.probe_times):
        if probe >= end:
            continue
        remaining = probe - network.sim.now
        if remaining > 0:
            network.run(remaining)
        truth_probes.append(
            (probe, DataPlaneSnapshot.from_live_network(network))
        )
    remaining = end - network.sim.now
    if remaining > 0:
        network.run(remaining)
    final_live = DataPlaneSnapshot.from_live_network(network)

    lags: Dict[str, float] = {}
    internal = network.topology.internal_routers()
    if case.straggler_index >= 0 and internal:
        straggler = internal[case.straggler_index % len(internal)]
        lags[straggler] = case.straggler_lag
    view = VerifierView(
        network.collector, lags=lags, default_lag=case.default_lag
    )
    return Execution(
        plan=plan,
        network=network,
        specs=list(specs),
        prefixes=prefixes,
        view=view,
        truth_probes=truth_probes,
        final_live=final_live,
        end_time=end,
    )


def _canonical_attrs(
    attrs: Tuple[Tuple[str, object], ...], change_id_map: Dict[int, int]
) -> List:
    """Event attrs with config-change ids densified.

    ``ConfigChange.change_id`` draws from a process-global counter
    that (unlike event ids) is never reset, so byte-identical replay
    requires mapping the raw ids to order-of-first-appearance.
    """
    canonical = []
    for key, value in attrs:
        if key == "change_id" and isinstance(value, int):
            value = change_id_map.setdefault(value, len(change_id_map))
        canonical.append([key, repr(value)])
    return canonical


def execution_digest(execution: Execution) -> str:
    """SHA-256 over the trace, HBG edge set, and final forwarding.

    Two executions of the same plan must agree on every byte of this
    payload; any drift is a determinism bug in the simulator, the
    capture layer, or HBR inference.
    """
    from repro.hbr.inference import InferenceEngine

    change_id_map: Dict[int, int] = {}
    events = [
        [
            event.event_id,
            event.router,
            event.kind.value,
            repr(event.timestamp),
            event.protocol,
            str(event.prefix) if event.prefix is not None else None,
            event.action.value if event.action is not None else None,
            event.peer,
            _canonical_attrs(event.attrs, change_id_map),
        ]
        for event in execution.events()
    ]
    graph = InferenceEngine().build_graph(execution.events())
    edges = sorted(
        (
            edge.cause,
            edge.effect,
            edge.evidence.technique,
            repr(round(edge.evidence.confidence, 9)),
        )
        for edge in graph.edges()
    )
    forwarding = {}
    for router in execution.final_live.routers():
        forwarding[router] = {
            str(entry.prefix): [
                entry.next_hop_router,
                entry.out_interface,
                entry.protocol,
                entry.discard,
            ]
            for entry in execution.final_live.entries_of(router)
        }
    payload = {"events": events, "edges": edges, "forwarding": forwarding}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
