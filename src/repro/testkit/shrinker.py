"""Delta-debugging failure minimization (ddmin over the workload).

Given a plan that makes an oracle fail, the shrinker searches for a
smaller plan that *still* fails the same oracle: classic ddmin over
the explicit event list (remove complement chunks, halve the
granularity when stuck), followed by a knob pass that trims the
prefix pool to what the surviving events reference.  Every candidate
is normalized first (see :func:`repro.testkit.case.normalize_events`)
so dropping an announce automatically drops its dependent withdraw.

The shrinker never mutates the topology seed — the failing case's
network is part of its identity — so a shrunk artifact replays on
exactly the topology that failed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from repro.testkit.case import CasePlan, PlannedEvent, normalize_events
from repro.testkit.oracles import OracleContext, OracleVerdict


@dataclass
class ShrinkResult:
    """Outcome of one minimization run."""

    plan: CasePlan
    verdict: OracleVerdict
    original_events: int
    shrunk_events: int
    oracle_runs: int

    @property
    def reduction(self) -> float:
        """Fraction of the original workload removed (0..1)."""
        if self.original_events == 0:
            return 0.0
        return 1.0 - self.shrunk_events / self.original_events

    def to_dict(self) -> dict:
        return {
            "original_events": self.original_events,
            "shrunk_events": self.shrunk_events,
            "oracle_runs": self.oracle_runs,
        }


def _candidate(plan: CasePlan, events: List[PlannedEvent]) -> CasePlan:
    return plan.with_events(normalize_events(events))


def shrink(
    plan: CasePlan,
    oracle_fn: Callable[[OracleContext], OracleVerdict],
    max_oracle_runs: int = 200,
    make_context: Callable[[CasePlan], OracleContext] = OracleContext,
) -> ShrinkResult:
    """Minimize ``plan`` while ``oracle_fn`` keeps failing.

    ``max_oracle_runs`` bounds the total number of oracle executions
    (each one replays the whole scenario), so shrinking a pathological
    case cannot run away.  The original plan must fail the oracle;
    raises ``ValueError`` otherwise so callers cannot "shrink" a
    passing case into a misleading artifact.
    """
    runs = 0

    def probe(events: List[PlannedEvent]) -> Tuple[bool, OracleVerdict, CasePlan]:
        nonlocal runs
        runs += 1
        candidate = _candidate(plan, events)
        verdict = oracle_fn(make_context(candidate))
        return (not verdict.ok), verdict, candidate

    failed, verdict, current = probe(list(plan.events))
    if not failed:
        raise ValueError(
            "shrink() called on a plan the oracle does not fail"
        )
    original_events = len(plan.events)
    events = list(current.events)

    granularity = 2
    while len(events) >= 2 and runs < max_oracle_runs:
        chunk = max(1, len(events) // granularity)
        reduced = False
        offset = 0
        while offset < len(events) and runs < max_oracle_runs:
            candidate_events = events[:offset] + events[offset + chunk:]
            if not candidate_events:
                offset += chunk
                continue
            still_fails, cand_verdict, cand_plan = probe(candidate_events)
            if still_fails:
                events = list(cand_plan.events)
                verdict = cand_verdict
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            offset += chunk
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)

    shrunk = _candidate(plan, events)

    # Knob pass: shrink the prefix pool to the indices still in use.
    used = [e.prefix_index for e in shrunk.events if e.prefix_index >= 0]
    if used and runs < max_oracle_runs:
        needed = max(used) + 1
        if needed < shrunk.case.prefixes:
            trimmed = replace(shrunk, case=replace(shrunk.case, prefixes=needed))
            runs += 1
            trimmed_verdict = oracle_fn(make_context(trimmed))
            if not trimmed_verdict.ok:
                shrunk = trimmed
                verdict = trimmed_verdict

    return ShrinkResult(
        plan=shrunk,
        verdict=verdict,
        original_events=original_events,
        shrunk_events=len(shrunk.events),
        oracle_runs=runs,
    )
