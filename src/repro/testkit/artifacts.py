"""Regression artifacts: shrunk failures persisted as JSON.

When an oracle fails, the runner shrinks the workload and writes one
self-contained JSON file under ``tests/fixtures/fuzz_regressions/``.
The artifact carries the full shrunk plan plus an ``expect`` field:

* ``"fail"`` — the oracle still fails on this plan; freshly written
  artifacts start here so the bug can be triaged.
* ``"pass"`` — the bug was fixed; the artifact stays as a committed
  regression fixture and replay asserts the oracle now passes.

The pytest collector in ``tests/test_testkit.py`` replays every
``*.json`` in the fixtures directory and asserts the recorded
expectation, so a fixed bug that regresses fails tier-1 immediately.

Schema history:

* v1 — oracle, expect, detail, case, events, probe_times, shrink.
* v2 — adds an optional ``trace`` block: the flight-recorder tail of
  the *original* (pre-shrink) failing run, so every committed repro
  carries the causal event sequence that led to the finding.  v1
  fixtures remain loadable forever; they simply have no trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional

from repro.testkit.case import CasePlan
from repro.testkit.oracles import ORACLES, OracleContext, OracleVerdict

SCHEMA_VERSION = 2
#: Every schema this loader still understands.
SUPPORTED_SCHEMAS = (1, 2)


@dataclass
class Artifact:
    """One persisted (usually shrunk) oracle failure."""

    oracle: str
    expect: str
    plan: CasePlan
    detail: str = ""
    shrink: Optional[dict] = None
    #: Flight-recorder tail of the failing run: a list of
    #: ``TraceEvent.to_record()`` dicts (empty when recording was off
    #: or the artifact predates schema v2).
    trace: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        plan = self.plan.to_dict()
        data = {
            "schema": SCHEMA_VERSION,
            "tool": "repro.testkit",
            "oracle": self.oracle,
            "expect": self.expect,
            "detail": self.detail,
            "case": plan["case"],
            "events": plan["events"],
            "probe_times": plan["probe_times"],
        }
        if self.shrink is not None:
            data["shrink"] = self.shrink
        if self.trace:
            data["trace"] = list(self.trace)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Artifact":
        if not isinstance(data, dict):
            raise ValueError("artifact is not a JSON object")
        if data.get("schema") not in SUPPORTED_SCHEMAS:
            raise ValueError(
                f"unsupported artifact schema {data.get('schema')!r} "
                f"(expected one of "
                f"{', '.join(str(s) for s in SUPPORTED_SCHEMAS)})"
            )
        for key in ("oracle", "expect", "case", "events"):
            if key not in data:
                raise ValueError(f"artifact is missing {key!r}")
        if data["expect"] not in ("pass", "fail"):
            raise ValueError(
                f"artifact expect must be 'pass' or 'fail', "
                f"got {data['expect']!r}"
            )
        plan = CasePlan.from_dict(
            {
                "case": data["case"],
                "events": data["events"],
                "probe_times": data.get("probe_times", ()),
            }
        )
        trace = data.get("trace", [])
        if not isinstance(trace, list) or not all(
            isinstance(item, dict) for item in trace
        ):
            raise ValueError("artifact trace must be a list of objects")
        return cls(
            oracle=str(data["oracle"]),
            expect=str(data["expect"]),
            plan=plan,
            detail=str(data.get("detail", "")),
            shrink=data.get("shrink"),
            trace=trace,
        )


def write_artifact(artifact: Artifact, directory: Path) -> Path:
    """Persist ``artifact`` under a content-derived stable name."""
    directory.mkdir(parents=True, exist_ok=True)
    name = (
        f"{artifact.oracle}-seed{artifact.plan.case.seed}-"
        f"{len(artifact.plan.events)}ev.json"
    )
    path = directory / name
    path.write_text(
        json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path: Path) -> Artifact:
    """Load one artifact; raises ValueError on any malformed input."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read artifact {path}: {exc}") from exc
    try:
        return Artifact.from_dict(data)
    except ValueError as exc:
        raise ValueError(f"bad artifact {path}: {exc}") from exc


def iter_artifacts(directory: Path) -> Iterator[Path]:
    """All artifact files in ``directory``, stably ordered."""
    if not directory.is_dir():
        return iter(())
    return iter(sorted(directory.glob("*.json")))


def replay_artifact(artifact: Artifact) -> OracleVerdict:
    """Re-run the artifact's oracle against its recorded plan."""
    oracle = ORACLES.get(artifact.oracle)
    if oracle is None:
        raise ValueError(f"artifact names unknown oracle {artifact.oracle!r}")
    return oracle(OracleContext(artifact.plan))


def artifact_matches_expectation(artifact: Artifact) -> OracleVerdict:
    """Replay and assert the recorded expectation.

    Returns the verdict on success; raises AssertionError when the
    replayed outcome contradicts ``expect`` (a regressed fixture or a
    bug that silently went away).
    """
    verdict = replay_artifact(artifact)
    expected_ok = artifact.expect == "pass"
    if verdict.ok != expected_ok:
        raise AssertionError(
            f"artifact for oracle {artifact.oracle!r} expected "
            f"{artifact.expect!r} but replay "
            f"{'passed' if verdict.ok else 'failed'}: {verdict.detail}"
        )
    return verdict
