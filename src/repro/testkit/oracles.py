"""Differential oracles: cross-implementation invariants per case.

Each oracle replays one :class:`~repro.testkit.case.CasePlan`
through two implementations of the same claim and asserts they
agree:

* ``snapshot-consistency`` — §5: an HBG-consistent snapshot never
  raises an alarm (loop/blackhole) the ground-truth data plane never
  exhibited, and once all logs drain it matches reality exactly.
* ``hbg-distributed`` — §5 final ¶: distributed HBG construction
  (per-router subgraphs + partial-path expansion) equals the
  centralized graph — identical edge sets, and root-cause traces
  that stay causally sound against the central graph.
* ``hbg-indexed-equivalence`` — the indexed (repro.hbr.index) and
  sharded (repro.hbr.sharded, workers=2) build paths produce exactly
  the legacy window-scan's edge set and evidence, and the streaming
  path lands on the same graph as the batch build.
* ``hbg-distributed-equivalence`` — the distributed construction
  engine (per-router indexed subgraphs + boundary-summary exchange,
  serial and forked) merges to exactly the legacy/indexed/sharded
  edge set and evidence, while exchanging strictly fewer bytes than
  shipping every event to a central collector.
* ``whatif-replay`` — §6: the what-if engine's forked prediction of
  an injection equals actually replaying that injection live.
* ``provenance-rollback`` — §6: reverting the provenance-identified
  root cause restores the pre-violation FIBs.
* ``replay-determinism`` — §8 precondition: executing the same plan
  twice is byte-identical (trace, HBG, forwarding).

Oracles receive an :class:`OracleContext`.  Read-only oracles use
the lazily-shared execution; oracles that mutate the network (what-if
replay, rollback) call :meth:`OracleContext.fresh` so they cannot
poison their neighbours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.capture.io_events import IOKind, RouteAction
from repro.net.config import ConfigChange, local_pref_map
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.testkit.case import CasePlan
from repro.testkit.execution import (
    Execution,
    uplink_map_name,
    execute_plan,
    execution_digest,
)


@dataclass
class OracleVerdict:
    """One oracle's judgement of one case."""

    oracle: str
    ok: bool
    detail: str = ""
    #: Number of individual comparisons made — 0 flags a vacuous pass.
    checked: int = 0

    def to_dict(self) -> Dict:
        return {
            "oracle": self.oracle,
            "ok": self.ok,
            "detail": self.detail,
            "checked": self.checked,
        }


class OracleContext:
    """Lazily-shared execution plus a factory for private ones."""

    def __init__(
        self,
        plan: CasePlan,
        executor: Callable[[CasePlan], Execution] = execute_plan,
    ):
        self.plan = plan
        self._executor = executor
        self._shared: Optional[Execution] = None

    @property
    def shared(self) -> Execution:
        """One execution reused by every read-only oracle."""
        if self._shared is None:
            self._shared = self._executor(self.plan)
        return self._shared

    def fresh(self) -> Execution:
        """A private execution an oracle is free to mutate."""
        return self._executor(self.plan)


Oracle = Callable[[OracleContext], OracleVerdict]

#: Name → oracle, in registration (= default run) order.
ORACLES: Dict[str, Oracle] = {}


def oracle(name: str) -> Callable[[Oracle], Oracle]:
    def register(fn: Oracle) -> Oracle:
        if name in ORACLES:
            raise ValueError(f"duplicate oracle name {name!r}")

        def wrapped(ctx: OracleContext) -> OracleVerdict:
            verdict = fn(ctx)
            verdict.oracle = name
            return verdict

        ORACLES[name] = wrapped
        return wrapped

    return register


def default_oracle_names() -> List[str]:
    return list(ORACLES)


# -- helpers ----------------------------------------------------------------


def _trace_outcomes(
    snapshot: DataPlaneSnapshot, routers: Sequence[str], prefixes
) -> Dict[Tuple[str, str], Tuple[str, str]]:
    """(router, prefix) → (path string, outcome) over a snapshot."""
    outcomes = {}
    for router in routers:
        for prefix in prefixes:
            path, outcome = snapshot.trace(router, prefix.first_address())
            outcomes[(router, str(prefix))] = ("->".join(path), outcome)
    return outcomes


def _anomaly_timeline(execution: Execution) -> Set[Tuple[str, str, str]]:
    """Every (router, prefix, anomaly) reality exhibited at any instant.

    The live FIBs change exactly at FIB_UPDATE events, so replaying
    the captured FIB events one at a time and tracing after each step
    enumerates every transient forwarding state the network actually
    passed through.
    """
    fib_events = sorted(
        (
            e
            for e in execution.events()
            if e.kind is IOKind.FIB_UPDATE and e.prefix is not None
        ),
        key=lambda e: (e.timestamp, e.event_id),
    )
    interesting = {str(p) for p in execution.prefixes}
    routers = execution.internal_routers
    replay = DataPlaneSnapshot()
    seen: Set[Tuple[str, str, str]] = set()
    for event in fib_events:
        if event.action is RouteAction.WITHDRAW:
            replay.remove(event.router, event.prefix)
        else:
            replay.install(SnapshotEntry.from_event(event))
        if str(event.prefix) not in interesting:
            continue
        for prefix in execution.prefixes:
            address = prefix.first_address()
            for router in routers:
                _path, outcome = replay.trace(router, address)
                if outcome in ("loop", "blackhole"):
                    seen.add((router, str(prefix), outcome))
    return seen


# -- (a) naive vs consistent snapshots --------------------------------------


@oracle("snapshot-consistency")
def snapshot_consistency(ctx: OracleContext) -> OracleVerdict:
    """Consistent snapshots raise no phantom alarms (§5, Fig. 1c)."""
    execution = ctx.shared
    internal = execution.internal_routers
    snapshotter = ConsistentSnapshotter(
        execution.view, internal_routers=internal
    )
    reality = _anomaly_timeline(execution)
    checked = 0
    problems: List[str] = []

    for probe, _truth in execution.truth_probes:
        snapshot, report = snapshotter.snapshot(probe)
        if not report.consistent:
            # The verifier defers instead of alarming — by design.
            continue
        for prefix in execution.prefixes:
            address = prefix.first_address()
            for router in internal:
                checked += 1
                _path, outcome = snapshot.trace(router, address)
                if outcome in ("loop", "blackhole") and (
                    (router, str(prefix), outcome) not in reality
                ):
                    problems.append(
                        f"phantom {outcome} at t={probe}: {router} -> "
                        f"{prefix} alarmed in the consistent cut but "
                        "never occurred in the data plane"
                    )

    # Once every log stream has drained, the consistent snapshot must
    # exist and match reality exactly.
    max_lag = max(
        [execution.view.default_lag]
        + [execution.view.lag_of(r) for r in internal]
    )
    drained = execution.end_time + max_lag + 1e-6
    snapshot, report = snapshotter.snapshot(drained)
    if not report.consistent:
        problems.append(
            "snapshot still inconsistent after all logs drained: "
            + "; ".join(report.reasons[:3])
        )
    else:
        recon = _trace_outcomes(snapshot, internal, execution.prefixes)
        truth = _trace_outcomes(
            execution.final_live, internal, execution.prefixes
        )
        for key in sorted(truth):
            checked += 1
            if recon[key] != truth[key]:
                problems.append(
                    f"final state diverges for {key[0]} -> {key[1]}: "
                    f"reconstructed {recon[key]}, live {truth[key]}"
                )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (b) centralized vs distributed HBG -------------------------------------


@oracle("hbg-distributed")
def hbg_distributed(ctx: OracleContext) -> OracleVerdict:
    """Distributed construction loses nothing vs the central HBG."""
    from repro.hbr.distributed import DistributedHbg
    from repro.hbr.inference import InferenceEngine

    execution = ctx.shared
    events = execution.events()
    central = InferenceEngine().build_graph(events)
    distributed = DistributedHbg()
    distributed.ingest_all(events)
    distributed.build_all()

    problems: List[str] = []
    checked = 1
    central_edges = central.edge_set()
    merged_edges = distributed.merged_graph().edge_set()
    if merged_edges != central_edges:
        missing = sorted(central_edges - merged_edges)[:3]
        extra = sorted(merged_edges - central_edges)[:3]
        problems.append(
            f"edge sets differ: {len(central_edges)} central vs "
            f"{len(merged_edges)} distributed "
            f"(missing {missing}, extra {extra})"
        )

    # Root-cause soundness on the latest FIB update of each workload
    # prefix.  The two walks are different algorithms by design — the
    # central one follows every inferred edge of the global graph,
    # while partial-path expansion crosses routers only via exactly
    # matched send/receive pairs — so they legitimately stop at
    # different leaf sets.  What must hold: every distributed root is
    # causally upstream of the event in the central graph (no spurious
    # causality), and the two walks agree on at least one root.
    interesting = {str(p) for p in execution.prefixes}
    latest: Dict[Tuple[str, str], int] = {}
    for event in events:
        if event.kind is not IOKind.FIB_UPDATE or event.prefix is None:
            continue
        if str(event.prefix) not in interesting:
            continue
        latest[(event.router, str(event.prefix))] = event.event_id
    for key in sorted(latest)[:6]:
        event_id = latest[key]
        checked += 1
        central_roots = {
            e.event_id for e in central.root_causes(event_id, 0.0)
        }
        distributed_roots = {
            e.event_id for e in distributed.trace_root_causes(event_id)
        }
        upstream = central.ancestors(event_id, 0.0) | {event_id}
        spurious = distributed_roots - upstream
        if spurious:
            problems.append(
                f"distributed roots of event {event_id} ({key[0]}, "
                f"{key[1]}) are not central ancestors: {sorted(spurious)}"
            )
        elif not (central_roots & distributed_roots):
            problems.append(
                f"root causes of event {event_id} ({key[0]}, {key[1]}) "
                f"are disjoint: central {sorted(central_roots)} vs "
                f"distributed {sorted(distributed_roots)}"
            )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (b') legacy scan vs indexed vs sharded HBG ------------------------------


def _evidence_edges(graph) -> List[Tuple[int, int, str, str, float]]:
    """Canonical (cause, effect, technique, rule, confidence) tuples."""
    return sorted(
        (
            edge.cause,
            edge.effect,
            edge.evidence.technique,
            edge.evidence.rule,
            edge.evidence.confidence,
        )
        for edge in graph.edges()
    )


@oracle("hbg-indexed-equivalence")
def hbg_indexed_equivalence(ctx: OracleContext) -> OracleVerdict:
    """The indexed and sharded build paths equal the legacy scan.

    The inverted indices of repro.hbr.index and the multiprocess
    shards of repro.hbr.sharded are pure performance work: for any
    capture they must produce exactly the edge set *and evidence*
    (technique, rule, confidence — the ambiguity discount depends on
    candidate-set equality, so confidences diverge first) of the
    original window-rescan implementation.
    """
    from repro.hbr.inference import InferenceConfig, InferenceEngine

    execution = ctx.shared
    events = execution.events()
    legacy = InferenceEngine(
        config=InferenceConfig(legacy_scan=True)
    ).build_graph(events)
    indexed_engine = InferenceEngine()
    indexed = indexed_engine.build_graph(events)
    sharded = indexed_engine.build_graph(events, parallel=2)

    reference = _evidence_edges(legacy)
    problems: List[str] = []
    checked = 1 + len(reference)
    for name, candidate in (("indexed", indexed), ("sharded", sharded)):
        found = _evidence_edges(candidate)
        if found != reference:
            ref_set, got_set = set(reference), set(found)
            missing = sorted(ref_set - got_set)[:3]
            extra = sorted(got_set - ref_set)[:3]
            problems.append(
                f"{name} path diverges from legacy scan: "
                f"{len(reference)} vs {len(found)} edges "
                f"(missing {missing}, extra {extra})"
            )

    # The streaming path shares the index; one pass over the events
    # must land on the same graph as the batch build.
    streaming = indexed_engine.streaming()
    for event in events:
        streaming.observe(event)
    checked += 1
    if streaming.graph.edge_set() != indexed.edge_set():
        problems.append(
            "streaming indexed path disagrees with batch: "
            f"{len(streaming.graph.edge_set())} vs "
            f"{len(indexed.edge_set())} edges"
        )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (b'') distributed construction vs every central build path --------------


@oracle("hbg-distributed-equivalence")
def hbg_distributed_equivalence(ctx: OracleContext) -> OracleVerdict:
    """Distributed construction merges to the central edge set.

    The boundary-summary engine of repro.hbr.distributed claims the
    strongest form of equivalence: its merged graph is byte-identical
    to the serial indexed build (hence, transitively, to the legacy
    scan and the sharded build — the other equivalence oracle pins
    those).  Checked here with full evidence tuples, for both the
    serial and the forked (workers=2) record builds, plus the traffic
    claim that makes the design worthwhile: boundary bytes strictly
    below shipping every event to a central collector.
    """
    from repro.hbr.distributed import DistributedHbg
    from repro.hbr.inference import InferenceEngine

    execution = ctx.shared
    events = execution.events()
    engine = InferenceEngine()
    central = engine.build_graph(events)
    reference = _evidence_edges(central)

    problems: List[str] = []
    checked = len(reference)
    for name, workers in (("serial", None), ("forked", 2)):
        distributed = DistributedHbg(InferenceEngine())
        distributed.ingest_all(events)
        distributed.build_all(workers=workers)
        merged = distributed.merged_graph()
        found = _evidence_edges(merged)
        checked += 1
        if found != reference:
            ref_set, got_set = set(reference), set(found)
            missing = sorted(ref_set - got_set)[:3]
            extra = sorted(got_set - ref_set)[:3]
            problems.append(
                f"{name} distributed merge diverges from central: "
                f"{len(reference)} vs {len(found)} edges "
                f"(missing {missing}, extra {extra})"
            )
        if merged.to_records() != central.to_records():
            problems.append(
                f"{name} distributed merge not byte-identical to "
                "central (records differ)"
            )
        stats = distributed.last_build
        checked += 1
        if events and stats.boundary_bytes >= stats.central_bytes:
            problems.append(
                f"{name} boundary exchange ({stats.boundary_bytes}B) "
                "not below central collection "
                f"({stats.central_bytes}B)"
            )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (c) what-if prediction vs actual replay --------------------------------


def _forwarding_map(
    snapshot: DataPlaneSnapshot, routers: Sequence[str]
) -> Dict[str, Dict[str, Tuple]]:
    return {
        router: {
            str(entry.prefix): (entry.next_hop_router, entry.discard)
            for entry in snapshot.entries_of(router)
        }
        for router in routers
    }


def _pick_injection(execution: Execution):
    """A deterministic hypothetical event + its description.

    Returns (factory, description) where ``factory()`` builds a fresh
    injection each call — necessary because applying a ConfigChange
    mutates it (fills ``previous``), so the fork and the live network
    each need their own copy.
    """
    case = execution.plan.case
    rng = random.Random(f"repro.testkit.whatif/{case.seed}")
    topology = execution.network.topology
    internal = set(topology.internal_routers())
    internal_links = sorted(
        (link.a.router, link.b.router)
        for link in topology.links.values()
        if link.a.router in internal
        and link.b.router in internal
        and link.up
    )
    if internal_links and rng.random() < 0.5:
        a, b = rng.choice(internal_links)

        def fail(net, a=a, b=b):
            net.fail_link(a, b)

        return fail, f"fail link {a}-{b}"
    spec = rng.choice(execution.specs)
    new_lp = rng.choice((5, 300))
    map_name = uplink_map_name(spec.router)

    def misconfigure(net, spec=spec, new_lp=new_lp, map_name=map_name):
        net.apply_config_change(
            ConfigChange(
                spec.router,
                "set_route_map",
                key=map_name,
                value=local_pref_map(map_name, new_lp),
                description=f"what-if local-pref {new_lp}",
            )
        )

    return misconfigure, f"set {spec.router} uplink local-pref to {new_lp}"


@oracle("whatif-replay")
def whatif_replay(ctx: OracleContext) -> OracleVerdict:
    """Forked prediction == live replay of the same injection (§6)."""
    from repro.whatif.engine import WhatIfEngine

    execution = ctx.fresh()
    network = execution.network
    case = execution.plan.case
    factory, description = _pick_injection(execution)

    engine = WhatIfEngine(network, policies=[], settle=case.settle)
    result = engine.ask([factory], seed=case.seed + 101)
    problems: List[str] = []
    if not result.fork_matches_live:
        problems.append(
            "fork did not reproduce the live forwarding state before "
            f"injection ({description})"
        )

    factory(network)
    network.run(case.settle)
    actual = DataPlaneSnapshot.from_live_network(network)

    internal = execution.internal_routers
    predicted_map = _forwarding_map(result.hypothetical, internal)
    actual_map = _forwarding_map(actual, internal)
    checked = 0
    for router in internal:
        prefixes = set(predicted_map[router]) | set(actual_map[router])
        for prefix in sorted(prefixes):
            checked += 1
            predicted = predicted_map[router].get(prefix)
            replayed = actual_map[router].get(prefix)
            if predicted != replayed:
                problems.append(
                    f"{router} {prefix}: predicted {predicted}, "
                    f"replay saw {replayed} ({description})"
                )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (d) provenance rollback ------------------------------------------------


@oracle("provenance-rollback")
def provenance_rollback(ctx: OracleContext) -> OracleVerdict:
    """Reverting the root cause restores the pre-violation FIB (§6)."""
    from repro.hbr.inference import InferenceEngine
    from repro.repair.provenance import ProvenanceTracer
    from repro.repair.rollback import RepairEngine
    from repro.verify.verifier import DataPlaneVerifier

    execution = ctx.fresh()
    network = execution.network
    case = execution.plan.case
    internal = execution.internal_routers
    pre = _forwarding_map(
        DataPlaneSnapshot.from_live_network(network), internal
    )

    # Invert the preference order decisively: the preferred uplink's
    # local-pref drops below everything else, so traffic must move.
    preferred = max(execution.specs, key=lambda s: s.local_pref)
    map_name = uplink_map_name(preferred.router)
    change = ConfigChange(
        preferred.router,
        "set_route_map",
        key=map_name,
        value=local_pref_map(map_name, 1),
        description="rollback-oracle misconfiguration",
    )
    changed_at = network.sim.now
    network.apply_config_change(change)
    network.run(case.settle)
    during = _forwarding_map(
        DataPlaneSnapshot.from_live_network(network), internal
    )
    if during == pre:
        return OracleVerdict(
            oracle="",
            ok=True,
            detail="misconfiguration changed no forwarding (vacuous)",
            checked=0,
        )

    # A FIB update on a (router, prefix) the change moved.
    moved = {
        (router, prefix)
        for router in internal
        for prefix in set(pre[router]) | set(during[router])
        if pre[router].get(prefix) != during[router].get(prefix)
    }
    graph = InferenceEngine().build_graph(execution.events())
    target = None
    for event in execution.events():
        if event.kind is not IOKind.FIB_UPDATE or event.prefix is None:
            continue
        if event.timestamp <= changed_at:
            continue
        if (event.router, str(event.prefix)) in moved:
            target = event
            break
    if target is None:
        return OracleVerdict(
            oracle="",
            ok=False,
            detail="forwarding moved but no FIB update was captured "
            "after the misconfiguration",
            checked=1,
        )

    provenance = ProvenanceTracer(graph).trace(target.event_id)
    if change.change_id not in provenance.config_change_ids():
        return OracleVerdict(
            oracle="",
            ok=False,
            detail=(
                f"provenance of FIB update {target.event_id} missed the "
                f"config change (found ids "
                f"{provenance.config_change_ids()})"
            ),
            checked=1,
        )

    verifier = DataPlaneVerifier(network.topology, [])
    report = RepairEngine(network, verifier).repair(
        provenance, settle=case.settle, only_change_ids={change.change_id}
    )
    problems: List[str] = []
    if not any(action.succeeded for action in report.actions):
        problems.append("repair engine applied no revert")
    post = _forwarding_map(
        DataPlaneSnapshot.from_live_network(network), internal
    )
    checked = 1
    for router in internal:
        prefixes = set(pre[router]) | set(post[router])
        for prefix in sorted(prefixes):
            checked += 1
            if pre[router].get(prefix) != post[router].get(prefix):
                problems.append(
                    f"{router} {prefix}: pre-violation "
                    f"{pre[router].get(prefix)} but post-rollback "
                    f"{post[router].get(prefix)}"
                )
    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (e) incremental vs batch verification -----------------------------------


@oracle("verify-incremental-equivalence")
def verify_incremental_equivalence(ctx: OracleContext) -> OracleVerdict:
    """The incremental verifier equals the batch pipeline per delta.

    Events are fed in *arrival* order (per-router log lag applied) to
    a full-relink streaming inference carrying an
    :class:`~repro.verify.incremental.IncrementalVerifier`.  After
    every FIB delta, three batch references are recomputed from
    scratch over exactly the events fed so far:

    * the §5 verdict (``consistent`` + ``missing_routers``) from a
      fresh :class:`ConsistentSnapshotter` over a fresh batch HBG,
    * the forwarding reconstruction
      (:meth:`DataPlaneSnapshot.from_fib_events`),
    * the policy violation list from the batch policy checks.

    All three must match the incremental verifier's state exactly —
    the equivalence contract docs/INCREMENTAL_VERIFY.md promises.
    """
    from repro.hbr.inference import InferenceEngine
    from repro.verify.incremental import IncrementalVerifier, incremental_engine
    from repro.verify.policy import BlackholeFreedomPolicy, LoopFreedomPolicy

    execution = ctx.shared
    internal = execution.internal_routers
    topology = execution.network.topology
    view = execution.view
    policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())

    engine = incremental_engine()
    streaming = engine.streaming()
    incremental = IncrementalVerifier(
        internal,
        topology=topology,
        policies=policies,
        view=view,
        engine=engine,
    ).attach(streaming)

    batch_engine = InferenceEngine()
    arrival_order = sorted(
        execution.events(),
        key=lambda e: (view.arrival_time(e), e.event_id),
    )
    problems: List[str] = []
    checked = 0
    fed: List = []
    for event in arrival_order:
        streaming.observe(event)
        fed.append(event)
        if (
            event.kind is not IOKind.FIB_UPDATE
            or event.prefix is None
            or problems
        ):
            continue
        clock = incremental.clock
        checked += 3

        inc_report = incremental.last_report(event.prefix)
        batch_graph = batch_engine.build_graph(fed)
        batch_report = ConsistentSnapshotter(view, internal).check(
            batch_graph, fed, prefix=event.prefix, at=clock
        )
        if (inc_report.consistent, inc_report.missing_routers) != (
            batch_report.consistent,
            batch_report.missing_routers,
        ):
            problems.append(
                f"§5 verdict diverges after event {event.event_id} "
                f"({event.router} {event.prefix}): incremental "
                f"({inc_report.consistent}, "
                f"{sorted(inc_report.missing_routers)}) vs batch "
                f"({batch_report.consistent}, "
                f"{sorted(batch_report.missing_routers)})"
            )

        batch_snapshot = DataPlaneSnapshot.from_fib_events(
            fed, taken_at=clock
        )
        inc_map = _forwarding_map(
            incremental.snapshot, incremental.snapshot.routers()
        )
        batch_map = _forwarding_map(batch_snapshot, batch_snapshot.routers())
        if inc_map != batch_map:
            problems.append(
                f"forwarding reconstruction diverges after event "
                f"{event.event_id}: incremental {inc_map} vs batch "
                f"{batch_map}"
            )

        batch_violations = []
        for policy in policies:
            batch_violations.extend(policy.check(batch_snapshot, topology))
        if incremental.violations() != batch_violations:
            problems.append(
                f"policy violations diverge after event {event.event_id}: "
                f"incremental {incremental.violations()[:3]} vs batch "
                f"{batch_violations[:3]}"
            )

    return OracleVerdict(
        oracle="",
        ok=not problems,
        detail="; ".join(problems[:5]),
        checked=checked,
    )


# -- (f) byte-identical replay ----------------------------------------------


@oracle("replay-determinism")
def replay_determinism(ctx: OracleContext) -> OracleVerdict:
    """Same plan, two executions, identical digests (§8)."""
    first = execution_digest(ctx.shared)
    second = execution_digest(ctx.fresh())
    ok = first == second
    return OracleVerdict(
        oracle="",
        ok=ok,
        detail=""
        if ok
        else f"digest drift: {first[:16]}… vs {second[:16]}…",
        checked=1,
    )
