"""repro.testkit — deterministic fuzzing with differential oracles.

The verification pipeline (capture → HBG → snapshot → verify →
repair) is exactly the kind of code whose bugs hide in event
interleavings no hand-written test thinks to try.  This package
closes that gap with a seed-deterministic scenario fuzzer
(:mod:`repro.testkit.fuzzer`), a registry of differential oracles
that cross-check independent implementations of the paper's claims
(:mod:`repro.testkit.oracles`), a delta-debugging shrinker that
minimizes any failure it finds (:mod:`repro.testkit.shrinker`), and
JSON regression artifacts replayed by tier-1 tests forever after
(:mod:`repro.testkit.artifacts`).  ``repro fuzz`` is the CLI front
end; :class:`repro.testkit.runner.FuzzRunner` is the library entry
point.

Everything here is dependency-free and deterministic: the same seed
produces the same cases, the same executions, and byte-identical
reports.
"""

from repro.testkit.artifacts import (
    Artifact,
    artifact_matches_expectation,
    iter_artifacts,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.testkit.case import (
    EVENT_KINDS,
    CasePlan,
    FuzzCase,
    PlannedEvent,
    normalize_events,
)
from repro.testkit.execution import (
    Execution,
    execute_plan,
    execution_digest,
    plan_case,
)
from repro.testkit.fuzzer import ScenarioFuzzer
from repro.testkit.oracles import (
    ORACLES,
    OracleContext,
    OracleVerdict,
    default_oracle_names,
    oracle,
)
from repro.testkit.runner import CaseResult, FuzzReport, FuzzRunner
from repro.testkit.shrinker import ShrinkResult, shrink

__all__ = [
    "Artifact",
    "artifact_matches_expectation",
    "iter_artifacts",
    "load_artifact",
    "replay_artifact",
    "write_artifact",
    "EVENT_KINDS",
    "CasePlan",
    "FuzzCase",
    "PlannedEvent",
    "normalize_events",
    "Execution",
    "execute_plan",
    "execution_digest",
    "plan_case",
    "ScenarioFuzzer",
    "ORACLES",
    "OracleContext",
    "OracleVerdict",
    "default_oracle_names",
    "oracle",
    "CaseResult",
    "FuzzReport",
    "FuzzRunner",
    "ShrinkResult",
    "shrink",
]
