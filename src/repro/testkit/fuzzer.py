"""Seed-deterministic fuzz-case generation.

:class:`ScenarioFuzzer` maps a master seed to an infinite, stable
stream of :class:`~repro.testkit.case.FuzzCase`\\ s.  Case *i* is
derived from ``random.Random(f"{seed}/{i}")`` — independent of every
other case, so ``fuzzer.case(17)`` is the same object whether you
generate one case or a thousand, and a CI failure report of
``(seed, index)`` reproduces locally without replaying the stream.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.testkit.case import FuzzCase


class ScenarioFuzzer:
    """Deterministic generator of randomized fuzz cases."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def case(self, index: int) -> FuzzCase:
        """The ``index``-th case of this fuzzer's stream."""
        rng = random.Random(f"{self.seed}/{index}")
        routers = rng.randint(4, 7)
        uplinks = min(rng.randint(1, 2), routers)
        straggler = rng.random() < 0.5
        return FuzzCase(
            seed=rng.getrandbits(31),
            routers=routers,
            uplinks=uplinks,
            extra_edge_fraction=rng.choice((0.0, 0.3, 0.6)),
            prefixes=rng.randint(2, 4),
            churn_events=rng.randint(4, 10),
            flap_events=rng.randint(0, 2),
            misconfig_rounds=rng.randint(0, 2),
            default_lag=rng.choice((0.0, 0.05)),
            straggler_index=rng.randrange(routers) if straggler else -1,
            straggler_lag=rng.choice((0.2, 0.5)) if straggler else 0.0,
        )

    def cases(self, count: int, first: int = 0) -> List[FuzzCase]:
        return [self.case(first + i) for i in range(count)]

    def stream(self, first: int = 0) -> Iterator[FuzzCase]:
        index = first
        while True:
            yield self.case(index)
            index += 1
