"""The fuzz campaign driver behind ``repro fuzz``.

:class:`FuzzRunner` turns a (seed, case-count) pair into a
:class:`FuzzReport`: generate cases, execute each one once, run every
requested oracle against it, shrink the first failure per case, and
persist the shrunk plan as a regression artifact.  The report itself
contains only deterministic content — counts, per-case digests, and
a combined campaign digest — so two runs of the same seed produce
byte-identical reports; wall-clock timings live exclusively in the
obs metrics stream.
"""

from __future__ import annotations

import contextlib
import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.testkit.artifacts import Artifact, write_artifact
from repro.testkit.case import CasePlan, FuzzCase
from repro.testkit.execution import execution_digest, plan_case
from repro.testkit.fuzzer import ScenarioFuzzer
from repro.testkit.oracles import (
    ORACLES,
    OracleContext,
    OracleVerdict,
    default_oracle_names,
)
from repro.testkit.shrinker import ShrinkResult, shrink


@dataclass
class CaseResult:
    """Everything the report keeps about one fuzzed case."""

    index: int
    case: FuzzCase
    events: int
    digest: str
    verdicts: List[OracleVerdict]
    artifact_path: Optional[str] = None
    shrink: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def to_dict(self) -> dict:
        data = {
            "index": self.index,
            "case": self.case.to_dict(),
            "events": self.events,
            "digest": self.digest,
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }
        if self.artifact_path is not None:
            data["artifact"] = self.artifact_path
        if self.shrink is not None:
            data["shrink"] = self.shrink
        return data


@dataclass
class FuzzReport:
    """Deterministic summary of one fuzz campaign."""

    seed: int
    oracles: List[str]
    results: List[CaseResult] = field(default_factory=list)
    #: Cases planned but skipped because the --minutes budget ran out.
    budget_skipped: int = 0

    @property
    def cases(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def campaign_digest(self) -> str:
        blob = "\n".join(r.digest for r in self.results)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "oracles": list(self.oracles),
            "cases": self.cases,
            "failures": len(self.failures),
            "budget_skipped": self.budget_skipped,
            "campaign_digest": self.campaign_digest,
            "results": [r.to_dict() for r in self.results],
        }

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of the case corpus (resource-ledger callback)."""
        from repro.obs import resources

        return resources.combined_sizeof(
            (self.results,),
            sample=None if audit else obs.get_ledger().sample,
        )


class FuzzRunner:
    """Run fuzz campaigns and mint regression artifacts."""

    def __init__(
        self,
        oracle_names: Optional[Sequence[str]] = None,
        artifacts_dir: Optional[Path] = None,
        shrink_failures: bool = True,
        max_shrink_runs: int = 200,
        trace_tail: int = 200,
    ) -> None:
        names = (
            list(oracle_names)
            if oracle_names is not None
            else default_oracle_names()
        )
        unknown = [n for n in names if n not in ORACLES]
        if unknown:
            raise ValueError(f"unknown oracle(s): {', '.join(sorted(unknown))}")
        self.oracle_names = names
        self.artifacts_dir = artifacts_dir
        self.shrink_failures = shrink_failures
        self.max_shrink_runs = max_shrink_runs
        #: How many flight-recorder events to embed in a failure
        #: artifact (the tail of the original, pre-shrink run);
        #: 0 disables per-case recording entirely.
        self.trace_tail = trace_tail

    def run(
        self,
        seed: int,
        cases: int,
        minutes: Optional[float] = None,
    ) -> FuzzReport:
        """Fuzz ``cases`` cases from ``seed``; stop early on budget.

        ``minutes`` bounds wall-clock spend: once exceeded, remaining
        cases are skipped and counted in ``report.budget_skipped``.
        The cases that *do* run are unaffected by the budget, so a
        truncated campaign is a prefix of the full one.
        """
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        fuzzer = ScenarioFuzzer(seed)
        report = FuzzReport(seed=seed, oracles=list(self.oracle_names))
        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("testkit.corpus", report)
        deadline = (
            time.monotonic() + minutes * 60.0 if minutes is not None else None
        )
        campaign_watch = registry.stopwatch()
        for index in range(cases):
            if deadline is not None and time.monotonic() >= deadline:
                report.budget_skipped = cases - index
                registry.counter("testkit.budget_skipped_total").inc(
                    report.budget_skipped
                )
                break
            with tracer.span("testkit.case", index=str(index)):
                result = self._run_case(index, fuzzer.case(index), registry)
            report.results.append(result)
            registry.counter("testkit.cases_total").inc()
            if not result.ok:
                for verdict in result.verdicts:
                    if not verdict.ok:
                        registry.counter(
                            "testkit.oracle_failures_total",
                            oracle=verdict.oracle,
                        ).inc()
        elapsed = campaign_watch.elapsed()
        if elapsed > 0:
            registry.gauge("testkit.cases_per_second").set(
                report.cases / elapsed
            )
        # Oracle cases stream verdicts too; make sure a campaign ends
        # with the ledger durable rather than waiting on flush_every.
        verdict_log = obs.get_verdicts()
        if verdict_log.enabled:
            verdict_log.flush()
        return report

    def _run_case(self, index, case, registry) -> CaseResult:
        watch = registry.stopwatch()
        # Record the case under the flight recorder so a failure can
        # persist its causal event tail.  The tail is snapshotted
        # BEFORE shrinking: it documents the original failing run, not
        # the hundreds of shrink re-executions.
        if self.trace_tail > 0:
            recording = obs.recording(
                capacity=max(self.trace_tail, 1024)
            )
        else:
            recording = contextlib.nullcontext(obs.get_recorder())
        with recording as recorder:
            plan = plan_case(case)
            context = OracleContext(plan)
            verdicts = [
                ORACLES[name](context) for name in self.oracle_names
            ]
            trace = (
                [e.to_record() for e in recorder.tail(self.trace_tail)]
                if self.trace_tail > 0
                else []
            )
        result = CaseResult(
            index=index,
            case=case,
            events=len(plan.events),
            digest=execution_digest(context.shared),
            verdicts=verdicts,
        )
        failure = next((v for v in verdicts if not v.ok), None)
        if failure is not None:
            self._capture_failure(result, plan, failure, registry, trace)
        registry.histogram("testkit.case_seconds").observe(watch.elapsed())
        return result

    def _capture_failure(
        self,
        result: CaseResult,
        plan: CasePlan,
        failure: OracleVerdict,
        registry,
        trace: Optional[List[dict]] = None,
    ) -> None:
        shrunk_plan = plan
        detail = failure.detail
        shrink_meta: Optional[dict] = None
        if self.shrink_failures:
            try:
                outcome: ShrinkResult = shrink(
                    plan,
                    ORACLES[failure.oracle],
                    max_oracle_runs=self.max_shrink_runs,
                )
            except ValueError:
                # Flaky-by-construction failure that no longer
                # reproduces on a fresh context: keep the full plan.
                pass
            else:
                shrunk_plan = outcome.plan
                detail = outcome.verdict.detail
                shrink_meta = outcome.to_dict()
                registry.histogram("testkit.shrink_oracle_runs").observe(
                    outcome.oracle_runs
                )
                result.shrink = shrink_meta
        if self.artifacts_dir is not None:
            artifact = Artifact(
                oracle=failure.oracle,
                expect="fail",
                plan=shrunk_plan,
                detail=detail,
                shrink=shrink_meta,
                trace=list(trace or []),
            )
            path = write_artifact(artifact, self.artifacts_dir)
            result.artifact_path = str(path)
            registry.counter("testkit.artifacts_written_total").inc()
