"""Replayable fuzz cases and their explicit event plans.

A :class:`FuzzCase` is the *compressed* form of a scenario: a seed
plus knobs, small enough to paste into a bug report.  Planning
expands it deterministically into a :class:`CasePlan` whose workload
is an explicit, individually-droppable event list — the form the
delta-debugging shrinker operates on and the form persisted in
regression artifacts.  Both are JSON-round-trippable, so a failing
case survives process death byte-for-byte.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Sequence, Tuple

#: Workload event vocabulary.  ``actor`` is an external peer name for
#: churn events, an ``"A|B"`` link key for flaps, and an internal
#: router name for misconfigs.
EVENT_KINDS = ("announce", "withdraw", "link_down", "link_up", "misconfig")


@dataclass(frozen=True)
class PlannedEvent:
    """One schedulable workload event, abstract enough to replay."""

    time: float
    kind: str
    actor: str
    prefix_index: int = -1
    local_pref: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown planned-event kind {self.kind!r}")

    def sort_key(self) -> Tuple:
        return (self.time, self.kind, self.actor, self.prefix_index)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlannedEvent":
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            actor=str(data["actor"]),
            prefix_index=int(data.get("prefix_index", -1)),
            local_pref=int(data.get("local_pref", 0)),
        )


@dataclass(frozen=True)
class FuzzCase:
    """Seed + knobs: everything needed to regenerate one scenario."""

    seed: int
    routers: int = 5
    uplinks: int = 2
    extra_edge_fraction: float = 0.5
    prefixes: int = 3
    churn_events: int = 8
    flap_events: int = 1
    misconfig_rounds: int = 1
    #: Log-delivery lag applied to every router's stream.
    default_lag: float = 0.0
    #: One internal router (by index into the sorted internal-router
    #: list) whose log stream lags extra — the Fig. 1c straggler.
    straggler_index: int = -1
    straggler_lag: float = 0.0
    start: float = 5.0
    mean_gap: float = 0.5
    down_time: float = 1.5
    settle: float = 60.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FuzzCase field(s): {sorted(unknown)}")
        if "seed" not in data:
            raise ValueError("FuzzCase needs a seed")
        return cls(**data)


@dataclass(frozen=True)
class CasePlan:
    """A case expanded into an explicit workload.

    ``events`` is the shrinkable part; ``probe_times`` are the
    simulated instants at which oracles compare the verifier's world
    view against ground truth.
    """

    case: FuzzCase
    events: Tuple[PlannedEvent, ...]
    probe_times: Tuple[float, ...] = ()

    @property
    def end_time(self) -> float:
        last = max((e.time for e in self.events), default=self.case.start)
        return last + self.case.settle

    def with_events(self, events: Sequence[PlannedEvent]) -> "CasePlan":
        return replace(self, events=tuple(events))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "probe_times": list(self.probe_times),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CasePlan":
        return cls(
            case=FuzzCase.from_dict(dict(data["case"])),
            events=tuple(
                PlannedEvent.from_dict(dict(e)) for e in data["events"]
            ),
            probe_times=tuple(float(t) for t in data.get("probe_times", ())),
        )


def normalize_events(
    events: Sequence[PlannedEvent],
) -> Tuple[PlannedEvent, ...]:
    """Drop events whose precondition was shrunk away.

    The shrinker removes arbitrary subsets, which can orphan a
    withdraw (no prior announce of that prefix by that peer) or a
    link_up (no prior link_down of that link).  Replaying an orphan
    would either error or silently no-op differently from the
    original run, so normalization removes them — the result is
    always a well-formed workload.
    """
    ordered = sorted(events, key=PlannedEvent.sort_key)
    live: Dict[str, set] = {}
    down: set = set()
    kept = []
    for event in ordered:
        if event.kind == "announce":
            live.setdefault(event.actor, set()).add(event.prefix_index)
        elif event.kind == "withdraw":
            holdings = live.get(event.actor, set())
            if event.prefix_index not in holdings:
                continue
            holdings.discard(event.prefix_index)
        elif event.kind == "link_down":
            if event.actor in down:
                continue
            down.add(event.actor)
        elif event.kind == "link_up":
            if event.actor not in down:
                continue
            down.discard(event.actor)
        kept.append(event)
    return tuple(kept)
