"""Synthetic topologies and workloads for scaling/accuracy experiments.

The paper's feasibility study used three routers; the claims in §4–§6
are about arbitrary networks.  These generators build:

* random connected single-AS networks with OSPF underlay, iBGP full
  mesh, and a configurable number of eBGP uplinks;
* churn workloads (external announce/withdraw sequences);
* misconfiguration campaigns (random local-pref changes on uplinks);
* link-flap workloads (failure/recovery bursts via the simulator's
  hardware-status hooks);
* synthetic FIB tables with a *planted* number of forwarding
  equivalence classes, for the §6 "100 K prefixes, <15 classes"
  experiment.

Every public builder accepts either a ``seed`` or an explicit
``rng`` (:class:`random.Random`); ``rng`` wins when both are given.
Passing the same ``rng`` through a sequence of builders replays the
exact same draw sequence, which is what makes ``repro.testkit`` fuzz
cases replayable.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addr import Prefix, parse_ip
from repro.net.config import (
    BgpNeighborConfig,
    ConfigChange,
    OspfInterfaceConfig,
    RouterConfig,
    StaticRouteConfig,
    local_pref_map,
)
from repro.net.simulator import DelayModel
from repro.net.topology import Router, Topology
from repro.protocols.network import Network
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry


def random_connected_topology(
    n: int,
    extra_edge_fraction: float = 0.5,
    seed: int = 0,
    delay: float = 0.008,
    asn: int = 65000,
    rng: Optional[random.Random] = None,
) -> Topology:
    """A random connected graph: spanning tree + extra random edges."""
    if n < 2:
        raise ValueError("need at least two routers")
    rng = rng if rng is not None else random.Random(seed)
    topo = Topology(f"rand{n}-s{seed}")
    for i in range(n):
        topo.add_router(
            Router(f"R{i}", asn=asn, loopback=parse_ip("192.168.0.1") + i)
        )
    subnet_base = parse_ip("10.200.0.0")
    subnet_index = 0

    def next_subnet() -> Prefix:
        nonlocal subnet_index
        prefix = Prefix(subnet_base + subnet_index * 4, 30)
        subnet_index += 1
        return prefix

    # Random spanning tree (random parent among already-attached nodes).
    attached = [0]
    for i in range(1, n):
        parent = rng.choice(attached)
        topo.connect(f"R{parent}", f"R{i}", next_subnet(), delay=delay)
        attached.append(i)
    # Extra edges for path diversity.
    extras = int(n * extra_edge_fraction)
    tries = 0
    while extras > 0 and tries < extras * 20:
        tries += 1
        a, b = rng.sample(range(n), 2)
        if topo.link_between(f"R{a}", f"R{b}") is not None:
            continue
        topo.connect(f"R{a}", f"R{b}", next_subnet(), delay=delay)
        extras -= 1
    return topo


@dataclass
class UplinkSpec:
    """One eBGP uplink: which internal router, peer AS, local-pref."""

    router: str
    external: str
    remote_asn: int
    local_pref: int


def attach_uplinks(
    topo: Topology,
    count: int,
    seed: int = 0,
    delay: float = 0.008,
    base_asn: int = 65001,
    preferred_first: bool = True,
    rng: Optional[random.Random] = None,
) -> List[UplinkSpec]:
    """Attach ``count`` external peers to distinct internal routers.

    Local-prefs descend from 200 so the first uplink is preferred,
    mirroring the paper's LP-30-beats-LP-20 policy shape.
    """
    rng = rng if rng is not None else random.Random(seed + 1)
    internal = topo.internal_routers()
    if count > len(internal):
        raise ValueError(f"cannot attach {count} uplinks to {len(internal)} routers")
    chosen = rng.sample(internal, count)
    if preferred_first:
        chosen.sort()
    subnet_base = parse_ip("10.210.0.0")
    specs = []
    for index, router in enumerate(chosen):
        name = f"Ext{index}"
        asn = base_asn + index
        topo.add_router(
            Router(
                name,
                asn=asn,
                loopback=parse_ip("192.168.200.1") + index,
                external=True,
            )
        )
        topo.connect(
            router, name, Prefix(subnet_base + index * 4, 30), delay=delay
        )
        specs.append(
            UplinkSpec(
                router=router,
                external=name,
                remote_asn=asn,
                local_pref=200 - index * 10,
            )
        )
    return specs


def build_random_network(
    n: int,
    uplinks: int = 2,
    seed: int = 0,
    extra_edge_fraction: float = 0.5,
    with_ospf: bool = True,
    delays: Optional[DelayModel] = None,
    clock_skews: Optional[Dict[str, float]] = None,
    log_drop_rate: float = 0.0,
    deterministic_bgp: bool = False,
    add_path: bool = False,
    rng: Optional[random.Random] = None,
) -> Tuple[Network, List[UplinkSpec]]:
    """A random single-AS network: OSPF underlay + iBGP full mesh.

    With ``rng`` given, the topology and uplink placement draw from it
    sequentially (one shared stream); the simulator still derives its
    own stream from ``seed`` so workload draws never perturb protocol
    timing.
    """
    topo = random_connected_topology(
        n, extra_edge_fraction=extra_edge_fraction, seed=seed, rng=rng
    )
    specs = attach_uplinks(topo, uplinks, seed=seed, rng=rng)
    uplink_of = {spec.router: spec for spec in specs}
    internal = topo.internal_routers()
    configs: List[RouterConfig] = []
    for index, name in enumerate(internal):
        config = RouterConfig(router=name, asn=65000, router_id=index + 1)
        spec = uplink_of.get(name)
        if spec is not None:
            map_name = f"{name.lower()}-uplink-lp"
            config.add_route_map(local_pref_map(map_name, spec.local_pref))
            config.add_bgp_neighbor(
                BgpNeighborConfig(
                    peer=spec.external,
                    remote_asn=spec.remote_asn,
                    import_map=map_name,
                )
            )
        for peer in internal:
            if peer == name:
                continue
            config.add_bgp_neighbor(
                BgpNeighborConfig(
                    peer=peer,
                    remote_asn=65000,
                    next_hop_self=True,
                    add_path=add_path,
                )
            )
        if with_ospf:
            router = topo.router(name)
            for iface_name, iface in router.interfaces.items():
                far_owner = None
                link = None
                for candidate in topo.links_of(name):
                    if candidate.interface_of(name).name == iface_name:
                        link = candidate
                        break
                if link is not None and not link.other_end(name).router.startswith(
                    "Ext"
                ):
                    config.ospf_interfaces[iface_name] = OspfInterfaceConfig(
                        interface=iface_name
                    )
        configs.append(config)
    for spec in specs:
        config = RouterConfig(
            router=spec.external, asn=spec.remote_asn, router_id=1000 + spec.remote_asn
        )
        config.add_bgp_neighbor(
            BgpNeighborConfig(peer=spec.router, remote_asn=65000)
        )
        configs.append(config)
    network = Network(
        topo,
        configs,
        seed=seed,
        delays=delays or DelayModel(),
        clock_skews=clock_skews,
        log_drop_rate=log_drop_rate,
        deterministic_bgp=deterministic_bgp,
    )
    return network, specs


def _bfs_parents(
    topo: Topology, root: str, internal: Sequence[str]
) -> Dict[str, Optional[str]]:
    """BFS-tree parent of every internal router, rooted at ``root``.

    Neighbor iteration is sorted, so the tree is a pure function of
    the topology — independent of hash seeds and insertion order.
    """
    members = frozenset(internal)
    parents: Dict[str, Optional[str]] = {root: None}
    queue: deque = deque([root])
    while queue:
        here = queue.popleft()
        neighbors = sorted(
            link.other_end(here).router
            for link in topo.links_of(here)
            if link.other_end(here).router in members
        )
        for neighbor in neighbors:
            if neighbor not in parents:
                parents[neighbor] = here
                queue.append(neighbor)
    return parents


def build_scaled_network(
    n: int,
    uplinks: int = 2,
    hub_count: int = 2,
    seed: int = 0,
    extra_edge_fraction: float = 0.25,
    delays: Optional[DelayModel] = None,
    clock_skews: Optional[Dict[str, float]] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Network, List[UplinkSpec]]:
    """A single-AS network whose event count scales O(n), for n≥128.

    :func:`build_random_network`'s iBGP full mesh (O(n²) sessions) and
    OSPF underlay (every /30 advertised to every router) both blow up
    quadratically in captured events, which caps the scaling
    benchmarks near n=48.  This family swaps in the two standard
    large-network designs:

    * **route reflection** (RFC 4456): the first ``hub_count`` routers
      (by sorted name) peer with everyone; every other router peers
      only with the hubs, which reflect with ``next_hop_self`` — O(n)
      sessions and O(n) route events per external prefix;
    * a **static underlay** instead of OSPF: each router carries one
      /32 static per border router's loopback, pointing at its
      BFS-tree parent toward that border (recursive next-hop
      resolution walks the chain hop by hop), so the IGP contributes
      O(uplinks·n) events instead of O(n²).

    Full data-plane coverage is preserved: every internal router
    resolves and installs every external prefix.
    """
    rng = rng or random.Random(seed)
    topo = random_connected_topology(
        n, extra_edge_fraction=extra_edge_fraction, seed=seed, rng=rng
    )
    specs = attach_uplinks(topo, uplinks, seed=seed, rng=rng)
    uplink_of = {spec.router: spec for spec in specs}
    internal = topo.internal_routers()
    hubs = sorted(internal)[: max(1, hub_count)]
    hub_set = frozenset(hubs)
    borders = sorted(spec.router for spec in specs)
    parent_maps = {
        border: _bfs_parents(topo, border, internal) for border in borders
    }
    loopback_of = {name: topo.router(name).loopback for name in internal}
    configs: List[RouterConfig] = []
    for index, name in enumerate(internal):
        config = RouterConfig(router=name, asn=65000, router_id=index + 1)
        spec = uplink_of.get(name)
        if spec is not None:
            map_name = f"{name.lower()}-uplink-lp"
            config.add_route_map(local_pref_map(map_name, spec.local_pref))
            config.add_bgp_neighbor(
                BgpNeighborConfig(
                    peer=spec.external,
                    remote_asn=spec.remote_asn,
                    import_map=map_name,
                )
            )
        if name in hub_set:
            for peer in internal:
                if peer == name:
                    continue
                config.add_bgp_neighbor(
                    BgpNeighborConfig(
                        peer=peer,
                        remote_asn=65000,
                        next_hop_self=True,
                        route_reflector_client=peer not in hub_set,
                    )
                )
        else:
            for hub in hubs:
                config.add_bgp_neighbor(
                    BgpNeighborConfig(
                        peer=hub, remote_asn=65000, next_hop_self=True
                    )
                )
        for border in borders:
            if border == name:
                continue
            parent = parent_maps[border].get(name)
            if parent is None:
                continue
            link = topo.link_between(name, parent)
            config.static_routes.append(
                StaticRouteConfig(
                    prefix=Prefix(loopback_of[border], 32),
                    next_hop=link.interface_of(parent).address,
                )
            )
        configs.append(config)
    for spec in specs:
        config = RouterConfig(
            router=spec.external,
            asn=spec.remote_asn,
            router_id=1000 + spec.remote_asn,
        )
        config.add_bgp_neighbor(
            BgpNeighborConfig(peer=spec.router, remote_asn=65000)
        )
        configs.append(config)
    network = Network(
        topo,
        configs,
        seed=seed,
        delays=delays or DelayModel(),
        clock_skews=clock_skews,
    )
    return network, specs


def external_prefixes(count: int, base: str = "203.0.0.0") -> List[Prefix]:
    """``count`` disjoint /24s to play the role of external prefix P."""
    start = parse_ip(base)
    return [Prefix(start + i * 256, 24) for i in range(count)]


def churn_workload(
    network: Network,
    specs: Sequence[UplinkSpec],
    prefixes: Sequence[Prefix],
    events: int,
    start: float,
    mean_gap: float = 0.5,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Tuple[float, str, str, Prefix]]:
    """Schedule random announce/withdraw events from external peers.

    Returns the schedule as (time, action, external, prefix) so the
    caller knows what happened.  Withdraws only target prefixes the
    same peer currently announces.
    """
    rng = rng if rng is not None else random.Random(seed + 2)
    announced: Dict[str, set] = {spec.external: set() for spec in specs}
    schedule: List[Tuple[float, str, str, Prefix]] = []
    when = start
    for _ in range(events):
        when += rng.expovariate(1.0 / mean_gap)
        spec = rng.choice(list(specs))
        live = announced[spec.external]
        if live and rng.random() < 0.4:
            prefix = rng.choice(sorted(live))
            live.discard(prefix)
            network.withdraw_prefix(spec.external, prefix, at=when)
            schedule.append((when, "withdraw", spec.external, prefix))
        else:
            prefix = rng.choice(list(prefixes))
            live.add(prefix)
            network.announce_prefix(spec.external, prefix, at=when)
            schedule.append((when, "announce", spec.external, prefix))
    return schedule


def link_flap_workload(
    network: Network,
    flaps: int,
    start: float,
    mean_gap: float = 2.0,
    down_time: float = 1.5,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Tuple[float, str, str, float]]:
    """Schedule random internal link failures and recoveries.

    Each flap fails one internal↔internal link at a random time and
    restores it ``down_time`` later, through the simulator's
    hardware-status hooks (so both endpoints observe HARDWARE_STATUS
    events).  Returns the schedule as (down_time_abs, router_a,
    router_b, down_duration).  Links touching external peers are left
    alone — eBGP session loss is churn's job, not the flap generator's.
    """
    rng = rng if rng is not None else random.Random(seed + 5)
    internal = set(network.topology.internal_routers())
    candidates = sorted(
        (link.a.router, link.b.router)
        for link in network.topology.links.values()
        if link.a.router in internal and link.b.router in internal
    )
    if not candidates:
        return []
    schedule: List[Tuple[float, str, str, float]] = []
    when = start
    for _ in range(flaps):
        when += rng.expovariate(1.0 / mean_gap)
        a, b = rng.choice(candidates)
        network.fail_link(a, b, at=when)
        network.restore_link(a, b, at=when + down_time)
        schedule.append((when, a, b, down_time))
    return schedule


def misconfig_campaign(
    specs: Sequence[UplinkSpec],
    rounds: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[ConfigChange]:
    """Random local-pref misconfigurations on uplink import maps.

    Each change flips one uplink's local-pref to a random value —
    sometimes harmless (preserving the preference order), sometimes a
    Fig. 2a-style inversion.
    """
    rng = rng if rng is not None else random.Random(seed + 3)
    changes = []
    for _ in range(rounds):
        spec = rng.choice(list(specs))
        new_lp = rng.choice((5, 10, 50, 150, 250, 300))
        map_name = f"{spec.router.lower()}-uplink-lp"
        changes.append(
            ConfigChange(
                spec.router,
                "set_route_map",
                key=map_name,
                value=local_pref_map(map_name, new_lp),
                description=f"set uplink local-pref to {new_lp}",
            )
        )
    return changes


def planted_ec_snapshot(
    num_prefixes: int,
    num_classes: int,
    num_routers: int = 10,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> Tuple[DataPlaneSnapshot, List[int]]:
    """A synthetic network-wide FIB with a known number of ECs.

    Prefixes are assigned round-robin-with-jitter to ``num_classes``
    behaviour classes; each class routes via a distinct next-hop
    pattern across ``num_routers`` routers.  Returns the snapshot and
    the planted class id per prefix — ground truth for the C-EC
    benchmark (§6's "100K prefixes ... less than 15 equivalence
    classes").
    """
    if num_classes < 1 or num_prefixes < num_classes:
        raise ValueError("need at least one prefix per class")
    rng = rng if rng is not None else random.Random(seed + 4)
    routers = [f"R{i}" for i in range(num_routers)]
    max_classes = (num_routers - 1) * num_routers
    if num_classes > max_classes:
        raise ValueError(
            f"{num_routers} routers support at most {max_classes} "
            f"distinct planted classes"
        )
    # Behaviour pattern per class: a rotation offset (1..n-1, so never
    # a self-loop) plus, for classes beyond the first n-1, one router
    # that discards instead — guaranteeing all patterns are distinct.
    patterns: List[Dict[str, Optional[str]]] = []
    for class_id in range(num_classes):
        offset = 1 + class_id % (num_routers - 1)
        discard_at = class_id // (num_routers - 1) - 1  # -1 = nobody
        pattern: Dict[str, Optional[str]] = {}
        for index, router in enumerate(routers):
            if index == discard_at:
                pattern[router] = None
            else:
                pattern[router] = routers[(index + offset) % num_routers]
        patterns.append(pattern)
    snapshot = DataPlaneSnapshot()
    base = parse_ip("20.0.0.0")
    assignment: List[int] = []
    for i in range(num_prefixes):
        class_id = rng.randrange(num_classes) if i >= num_classes else i
        assignment.append(class_id)
        prefix = Prefix(base + i * 256, 24)
        for router in routers:
            next_hop = patterns[class_id][router]
            snapshot.install(
                SnapshotEntry(
                    router=router,
                    prefix=prefix,
                    next_hop_router=next_hop,
                    out_interface="eth0",
                    protocol="ibgp",
                    discard=next_hop is None,
                    source_event_id=0,
                    timestamp=0.0,
                )
            )
    return snapshot, assignment
