"""Fig. 2: an ill-considered configuration change violates the policy.

Starting from the converged Fig. 1b state (everyone exits via R2,
local-pref 30), the operator sets R2's uplink local-pref to 10 —
lower than R1's 20.  After R2's soft reconfiguration, R2's best path
flips to the iBGP route via R1, R2 withdraws its own route, and every
router switches to the R1 uplink: the preferred-exit policy is
violated network-wide (Fig. 2b).

The scenario also scripts the *follow-on* disaster of §2: if a
data-plane-only verifier reacts by blocking the FIB updates, the
control plane and data plane disagree; when R2's uplink subsequently
fails and R2 withdraws the route, the stale FIBs keep sending traffic
to R2, which black-holes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.config import ConfigChange, local_pref_map
from repro.net.simulator import DelayModel
from repro.protocols.network import Network
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P

#: The misconfigured local-pref of Fig. 2a.
BAD_LOCAL_PREF = 10


def bad_lp_change() -> ConfigChange:
    """The Fig. 2a configuration change: R2 uplink LP 30 -> 10."""
    return ConfigChange(
        "R2",
        "set_route_map",
        key="r2-uplink-lp",
        value=local_pref_map("r2-uplink-lp", BAD_LOCAL_PREF),
        description=f"set uplink local-pref to {BAD_LOCAL_PREF}",
    )


@dataclass
class Fig2Scenario:
    """Builder/driver for the Fig. 2 sequence."""

    seed: int = 0
    delays: Optional[DelayModel] = None
    log_drop_rate: float = 0.0
    fig1: Fig1Scenario = field(init=False)
    change: Optional[ConfigChange] = field(init=False, default=None)
    t_change: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.fig1 = Fig1Scenario(
            seed=self.seed, delays=self.delays, log_drop_rate=self.log_drop_rate
        )

    @property
    def network(self) -> Network:
        return self.fig1.network

    def run_baseline(self, settle: float = 5.0) -> Network:
        """The correct starting state: converged Fig. 1b."""
        return self.fig1.run_fig1b(settle)

    def run_fig2a(self, settle: float = 60.0) -> Network:
        """Apply the bad LP change and let it fully propagate.

        ``settle`` must exceed the soft-reconfiguration delay
        (~25 s with paper timings).
        """
        net = self.run_baseline()
        self.change = bad_lp_change()
        self.t_change = net.sim.now
        net.apply_config_change(self.change)
        net.run(settle)
        return net

    def run_fig2b_uplink_failure(self, settle: float = 10.0) -> Network:
        """Continue from 2a: R2's uplink fails, R2 withdraws P."""
        net = self.run_fig2a()
        net.fail_link("R2", "Ext2")
        net.run(settle)
        return net

    def exit_router_for(self, source: str) -> Optional[str]:
        return self.fig1.exit_router_for(source)

    def violates_policy(self) -> bool:
        """True when traffic is not exiting via R2 although its uplink
        is up (the §2 policy, checked on the real data plane)."""
        uplink = self.network.topology.link_between("R2", "Ext2")
        if uplink is None or not uplink.up:
            return False
        for source in ("R1", "R3"):
            if self.exit_router_for(source) != "R2":
                return True
        return False
