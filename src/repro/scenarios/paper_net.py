"""The paper's three-router BGP network (Figs. 1, 2, 4, 5).

Routers R1, R2, R3 share AS 65000 and form an iBGP full mesh over a
physical triangle.  R1 peers with Ext1 (AS 65001) and R2 with Ext2
(AS 65002) — the two uplinks.  The operator policy of §2:

    "R2 is the preferred exit point when its uplink is up; otherwise,
    R1 should be used."

implemented, as in the paper, with import route-maps setting
local-pref 30 on R2's uplink and 20 on R1's uplink.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.config import (
    BgpNeighborConfig,
    RouterConfig,
    local_pref_map,
)
from repro.net.simulator import DelayModel
from repro.net.topology import paper_prefix, paper_topology
from repro.protocols.network import Network

#: Paper values: LP 30 on R2's uplink, LP 20 on R1's uplink (§2).
R1_UPLINK_LP = 20
R2_UPLINK_LP = 30

INTERNAL_ROUTERS = ("R1", "R2", "R3")


def _internal_config(
    name: str,
    router_id: int,
    uplink_peer: Optional[str],
    uplink_asn: Optional[int],
    uplink_lp: Optional[int],
    add_path: bool,
) -> RouterConfig:
    config = RouterConfig(router=name, asn=65000, router_id=router_id)
    if uplink_peer is not None:
        map_name = f"{name.lower()}-uplink-lp"
        config.add_route_map(local_pref_map(map_name, uplink_lp or 100))
        config.add_bgp_neighbor(
            BgpNeighborConfig(
                peer=uplink_peer,
                remote_asn=uplink_asn or 0,
                import_map=map_name,
            )
        )
    for peer in INTERNAL_ROUTERS:
        if peer == name:
            continue
        config.add_bgp_neighbor(
            BgpNeighborConfig(
                peer=peer,
                remote_asn=65000,
                next_hop_self=True,
                add_path=add_path,
            )
        )
    return config


def _external_config(name: str, asn: int, peer: str, router_id: int) -> RouterConfig:
    config = RouterConfig(router=name, asn=asn, router_id=router_id)
    config.add_bgp_neighbor(BgpNeighborConfig(peer=peer, remote_asn=65000))
    return config


def build_paper_network(
    seed: int = 0,
    delays: Optional[DelayModel] = None,
    clock_skews: Optional[Dict[str, float]] = None,
    log_drop_rate: float = 0.0,
    deterministic_bgp: bool = False,
    add_path: bool = False,
    link_delay: float = 0.008,
) -> Network:
    """Build (but do not start) the paper's network."""
    topo = paper_topology(delay=link_delay)
    configs = [
        _internal_config("R1", 1, "Ext1", 65001, R1_UPLINK_LP, add_path),
        _internal_config("R2", 2, "Ext2", 65002, R2_UPLINK_LP, add_path),
        _internal_config("R3", 3, None, None, None, add_path),
        _external_config("Ext1", 65001, "R1", 101),
        _external_config("Ext2", 65002, "R2", 102),
    ]
    return Network(
        topo,
        configs,
        seed=seed,
        delays=delays or DelayModel(),
        clock_skews=clock_skews,
        log_drop_rate=log_drop_rate,
        deterministic_bgp=deterministic_bgp,
    )


#: The prefix P of the paper's examples.
P = paper_prefix()


def paper_policy():
    """The preferred-exit policy of §2 as a verifier policy object.

    Imported lazily to avoid a circular dependency at package import
    time (scenarios are a substrate for the verifier's tests too).
    """
    from repro.verify.policy import PreferredExitPolicy

    return PreferredExitPolicy(
        prefix=P,
        preferred_exit="R2",
        fallback_exit="R1",
        uplink_of={"R2": "Ext2", "R1": "Ext1"},
    )


PREFERRED_EXIT_POLICY = "preferred-exit(R2 else R1)"
