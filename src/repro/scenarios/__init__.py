"""Scenario library: the paper's example networks and synthetic workloads.

Each scenario module builds a ready-to-run
:class:`~repro.protocols.network.Network` plus the event script that
drives it, so tests, examples, and benchmarks all exercise exactly
the same situations the paper describes.
"""

from repro.scenarios.paper_net import (
    PREFERRED_EXIT_POLICY,
    build_paper_network,
    paper_policy,
)
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.fig5 import Fig5Scenario
from repro.scenarios.vendor import VendorDivergenceScenario

__all__ = [
    "Fig1Scenario",
    "Fig2Scenario",
    "Fig5Scenario",
    "PREFERRED_EXIT_POLICY",
    "VendorDivergenceScenario",
    "build_paper_network",
    "paper_policy",
]
