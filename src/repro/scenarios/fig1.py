"""Fig. 1: verification amidst routing updates.

* Fig. 1a — only the route via R1 is available: Ext1 announces P,
  the network converges, and all traffic exits via R1.
* Fig. 1b — the route via R2 becomes available: Ext2 announces P,
  and because R2's uplink carries local-pref 30 (> R1's 20), all
  routers converge to exit via R2.
* Fig. 1c — while the Fig. 1b update propagates, a naive data-plane
  snapshot that catches R1's and R3's new FIBs but R2's *stale* FIB
  sees a phantom forwarding loop between R1 and R2.

The scenario exposes the precise timestamps of each stage so the
snapshot benchmarks can probe every intermediate instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.simulator import DelayModel
from repro.protocols.network import Network
from repro.scenarios.paper_net import P, build_paper_network


@dataclass
class Fig1Scenario:
    """Builder/driver for the Fig. 1 sequence."""

    seed: int = 0
    delays: Optional[DelayModel] = None
    log_drop_rate: float = 0.0
    network: Network = field(init=False)
    #: Simulation time at which Ext2's announcement is injected (1b).
    t_r2_route: float = field(init=False, default=0.0)
    #: Convergence deadline after the 1b announcement.
    t_converged: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.network = build_paper_network(
            seed=self.seed,
            delays=self.delays,
            log_drop_rate=self.log_drop_rate,
        )

    def run_fig1a(self, settle: float = 5.0) -> Network:
        """Start the network and announce P via R1's uplink only."""
        net = self.network
        net.start()
        net.announce_prefix("Ext1", P)
        net.run(settle)
        return net

    def run_fig1b(self, settle: float = 5.0) -> Network:
        """Continue from 1a: announce P via R2's uplink and converge."""
        net = self.run_fig1a(settle)
        self.t_r2_route = net.sim.now
        net.announce_prefix("Ext2", P)
        net.run(settle)
        self.t_converged = net.sim.now
        return net

    def exit_router_for(self, source: str) -> Optional[str]:
        """Which uplink router the actual data plane exits through."""
        path, outcome = self.network.trace_path(source, P.first_address())
        if outcome != "delivered":
            return None
        for hop in path:
            if hop in ("Ext1", "Ext2"):
                return "R1" if hop == "Ext1" else "R2"
        return None
