"""Fig. 5 / §7: the feasibility study, replayed with the paper's timings.

The paper deployed three Cisco VM routers in GNS3, started from a
correct state (R1 and R3 exit via R2), then manually set R1's uplink
local-pref to 200 and harvested the router logs.  The measured
timeline:

* TTY config -> soft reconfiguration: ~25 s
* soft reconfiguration -> FIB install ("P direct"): ~4 ms
* FIB install -> route announced to neighbors: ~4 ms
* announcement propagation: ~8 ms
* receive -> FIB install on R2/R3: <4 ms
* R2 then withdraws its own route

We reproduce the same network and event script with a
:class:`~repro.net.simulator.DelayModel` carrying those constants,
capture the I/O logs through the shim, and the HBR machinery derives
the same happens-before graph shape as the paper's Fig. 5 — including
the two verification punchlines of §7: the snapshot that only has
R3's new FIB is detected as inconsistent, and the root cause resolves
to R1's configuration change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.config import ConfigChange, local_pref_map
from repro.net.simulator import DelayModel
from repro.protocols.network import Network
from repro.scenarios.paper_net import P, build_paper_network

#: The localpref the operator sets on R1 in §7.
FIG5_LOCAL_PREF = 200


def fig5_change() -> ConfigChange:
    """§7's operator action: R1 uplink local-pref -> 200."""
    return ConfigChange(
        "R1",
        "set_route_map",
        key="r1-uplink-lp",
        value=local_pref_map("r1-uplink-lp", FIG5_LOCAL_PREF),
        description=f"set uplink local-pref to {FIG5_LOCAL_PREF}",
    )


@dataclass
class Fig5Scenario:
    """Builder/driver for the §7 feasibility replay."""

    seed: int = 0
    network: Network = field(init=False)
    change: Optional[ConfigChange] = field(init=False, default=None)
    t_change: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.network = build_paper_network(
            seed=self.seed,
            delays=DelayModel.paper_fig5(),
        )

    def run_correct_state(self, settle: float = 5.0) -> Network:
        """Converge to the §7 starting state: exit via R2.

        Both uplinks announce P; R2 wins on local-pref (30 > 20),
        matching "routers R1 and R3 are sending traffic to the
        external prefix P via router R2".
        """
        net = self.network
        net.start()
        net.announce_prefix("Ext1", P)
        net.announce_prefix("Ext2", P)
        net.run(settle)
        return net

    def run_localpref_change(self, settle: float = 40.0) -> Network:
        """Apply the LP=200 change; ``settle`` covers the 25 s lag."""
        net = self.run_correct_state()
        self.change = fig5_change()
        self.t_change = net.sim.now
        net.apply_config_change(self.change)
        net.run(settle)
        return net
