"""Vendor-divergence scenario: same configs, different best paths.

§2's core motivation for verifying the *actual* control plane:
control-plane models "ignore vendor-specific implementation details
that may apply in other scenarios — e.g., differences in BGP path
selection rules across vendors [9, 21]".

This scenario builds a router with two equally-attractive eBGP routes
for the same prefix — identical local-pref, AS-path length, origin,
and (different-neighbor-AS, hence incomparable) MED — where the two
real-world tie-break chains disagree:

* **Cisco** reaches the *oldest eBGP route* step first: whichever
  route arrived first wins.
* **Juniper** has no arrival-order step and falls through to *lowest
  advertising router id*.

We arrange the arrival order so the first-arriving peer has the
*higher* router id; a Cisco border router and a Juniper border router
running the identical configuration then steer traffic out of
different uplinks — exactly the discrepancy that makes a
single-vendor control-plane model unsound for a mixed network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addr import Prefix, parse_ip
from repro.net.config import BgpNeighborConfig, RouterConfig
from repro.net.simulator import DelayModel
from repro.net.topology import Router, Topology
from repro.protocols.network import Network

#: The contested prefix.
VP = Prefix.parse("198.18.0.0/24")

#: ExtFirst announces first but has the HIGH router id (99);
#: ExtSecond announces second with the LOW router id (1).
FIRST_PEER = "ExtFirst"
SECOND_PEER = "ExtSecond"


def _build(vendor: str, seed: int, delays: Optional[DelayModel]) -> Network:
    topo = Topology(f"vendor-{vendor}")
    topo.add_router(
        Router("B1", asn=65000, loopback=parse_ip("192.168.0.1"), vendor=vendor)
    )
    topo.add_router(
        Router(
            FIRST_PEER,
            asn=65001,
            loopback=parse_ip("192.168.1.1"),
            external=True,
        )
    )
    topo.add_router(
        Router(
            SECOND_PEER,
            asn=65002,
            loopback=parse_ip("192.168.1.2"),
            external=True,
        )
    )
    topo.connect("B1", FIRST_PEER, Prefix.parse("10.250.0.0/30"))
    topo.connect("B1", SECOND_PEER, Prefix.parse("10.250.0.4/30"))

    border = RouterConfig(router="B1", asn=65000, router_id=10)
    border.add_bgp_neighbor(BgpNeighborConfig(peer=FIRST_PEER, remote_asn=65001))
    border.add_bgp_neighbor(BgpNeighborConfig(peer=SECOND_PEER, remote_asn=65002))
    first = RouterConfig(router=FIRST_PEER, asn=65001, router_id=99)
    first.add_bgp_neighbor(BgpNeighborConfig(peer="B1", remote_asn=65000))
    second = RouterConfig(router=SECOND_PEER, asn=65002, router_id=1)
    second.add_bgp_neighbor(BgpNeighborConfig(peer="B1", remote_asn=65000))

    return Network(topo, [border, first, second], seed=seed, delays=delays)


@dataclass
class VendorDivergenceScenario:
    """Run the identical announcement sequence under a given vendor."""

    vendor: str = "cisco"
    seed: int = 0
    delays: Optional[DelayModel] = None
    gap: float = 1.0  # seconds between the two announcements
    network: Network = field(init=False)

    def __post_init__(self) -> None:
        self.network = _build(self.vendor, self.seed, self.delays)

    def run(self, settle: float = 5.0) -> Network:
        net = self.network
        net.start()
        net.announce_prefix(FIRST_PEER, VP)
        net.run(self.gap)
        net.announce_prefix(SECOND_PEER, VP)
        net.run(settle)
        return net

    def chosen_exit(self) -> Optional[str]:
        """Which external peer B1's best path points at."""
        best = self.network.runtime("B1").bgp.rib.best(VP)
        return best.from_peer if best is not None else None


def divergence(seed: int = 0, delays: Optional[DelayModel] = None):
    """Run the scenario under both vendors; returns (cisco, juniper)
    chosen exits."""
    cisco = VendorDivergenceScenario(vendor="cisco", seed=seed, delays=delays)
    cisco.run()
    juniper = VendorDivergenceScenario(
        vendor="juniper", seed=seed, delays=delays
    )
    juniper.run()
    return cisco.chosen_exit(), juniper.chosen_exit()
