"""Topology model: routers, interfaces, links, and builders.

A :class:`Topology` is the static wiring of the network — which
routers exist, how their interfaces connect, and which routers sit in
which autonomous system.  Protocol sessions (BGP neighbors, OSPF
adjacencies) are configured separately in :mod:`repro.net.config`;
the topology only answers "who is physically reachable from whom".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addr import Prefix, format_ip, parse_ip


class TopologyError(ValueError):
    """Raised for inconsistent topology construction."""


@dataclass(frozen=True)
class Interface:
    """A router interface: a name, an address, and the prefix it sits in."""

    router: str
    name: str
    address: int
    prefix: Prefix

    def __post_init__(self) -> None:
        if not self.prefix.contains_address(self.address):
            raise TopologyError(
                f"interface {self.router}:{self.name} address "
                f"{format_ip(self.address)} outside {self.prefix}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        return (self.router, self.name)

    def __str__(self) -> str:
        return f"{self.router}:{self.name}({format_ip(self.address)})"


@dataclass
class Link:
    """A point-to-point link between two interfaces.

    ``delay`` is the one-way propagation delay in seconds used by the
    simulator; ``up`` is the current hardware status (a link-down is a
    control-plane *input* in the paper's taxonomy).
    """

    a: Interface
    b: Interface
    delay: float = 0.008
    up: bool = True

    def __post_init__(self) -> None:
        if self.a.key == self.b.key:
            raise TopologyError(f"self-link at {self.a}")
        if self.delay < 0:
            raise TopologyError(f"negative link delay: {self.delay}")

    @property
    def key(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        return tuple(sorted((self.a.key, self.b.key)))  # type: ignore[return-value]

    def endpoints(self) -> Tuple[str, str]:
        return (self.a.router, self.b.router)

    def other_end(self, router: str) -> Interface:
        """The interface on the far side from ``router``."""
        if self.a.router == router:
            return self.b
        if self.b.router == router:
            return self.a
        raise TopologyError(f"{router} is not on link {self.key}")

    def interface_of(self, router: str) -> Interface:
        """The interface on ``router``'s side of this link."""
        if self.a.router == router:
            return self.a
        if self.b.router == router:
            return self.b
        raise TopologyError(f"{router} is not on link {self.key}")

    def __str__(self) -> str:
        state = "up" if self.up else "down"
        return f"{self.a}<->{self.b}[{state},{self.delay * 1000:.1f}ms]"


@dataclass
class Router:
    """A router: a name, an AS number, a loopback address, and a vendor.

    ``vendor`` selects the BGP decision-process profile (the paper's
    §2 motivation: vendor-specific tie-break quirks).  ``external``
    marks routers outside the administrative domain — their I/Os are
    not captured, which is what terminates the §5 snapshot walk.
    """

    name: str
    asn: int = 65000
    loopback: int = 0
    vendor: str = "cisco"
    external: bool = False
    interfaces: Dict[str, Interface] = field(default_factory=dict)

    def add_interface(self, interface: Interface) -> None:
        if interface.router != self.name:
            raise TopologyError(
                f"interface {interface} belongs to {interface.router}, "
                f"not {self.name}"
            )
        if interface.name in self.interfaces:
            raise TopologyError(f"duplicate interface {interface}")
        self.interfaces[interface.name] = interface

    def __str__(self) -> str:
        return f"{self.name}(AS{self.asn})"


class Topology:
    """A named collection of routers and links with adjacency queries."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.routers: Dict[str, Router] = {}
        self.links: Dict[Tuple[Tuple[str, str], Tuple[str, str]], Link] = {}
        self._adjacency: Dict[str, List[Link]] = {}

    # -- construction ---------------------------------------------------

    def add_router(self, router: Router) -> Router:
        if router.name in self.routers:
            raise TopologyError(f"duplicate router {router.name}")
        self.routers[router.name] = router
        self._adjacency[router.name] = []
        return router

    def router(self, name: str) -> Router:
        try:
            return self.routers[name]
        except KeyError:
            raise TopologyError(f"unknown router {name!r}") from None

    def add_link(self, link: Link) -> Link:
        for iface in (link.a, link.b):
            router = self.router(iface.router)
            if iface.name not in router.interfaces:
                router.add_interface(iface)
        if link.key in self.links:
            raise TopologyError(f"duplicate link {link.key}")
        self.links[link.key] = link
        self._adjacency[link.a.router].append(link)
        self._adjacency[link.b.router].append(link)
        return link

    def connect(
        self,
        router_a: str,
        router_b: str,
        subnet: Prefix,
        delay: float = 0.008,
        iface_a: Optional[str] = None,
        iface_b: Optional[str] = None,
    ) -> Link:
        """Wire two routers with a fresh point-to-point link.

        The first host address in ``subnet`` goes to ``router_a`` and
        the second to ``router_b``.  Interface names default to
        ``eth<N>``.
        """
        if subnet.num_addresses() < 2:
            raise TopologyError(f"subnet {subnet} too small for a link")
        name_a = iface_a or f"eth{len(self.router(router_a).interfaces)}"
        name_b = iface_b or f"eth{len(self.router(router_b).interfaces)}"
        a = Interface(router_a, name_a, subnet.first_address(), subnet)
        b = Interface(router_b, name_b, subnet.first_address() + 1, subnet)
        return self.add_link(Link(a, b, delay=delay))

    # -- queries --------------------------------------------------------

    def links_of(self, router: str) -> List[Link]:
        self.router(router)
        return list(self._adjacency[router])

    def neighbors(self, router: str, only_up: bool = True) -> List[str]:
        """Adjacent router names (by default across up links only)."""
        result = []
        for link in self._adjacency.get(router, []):
            if only_up and not link.up:
                continue
            result.append(link.other_end(router).router)
        return result

    def link_between(self, router_a: str, router_b: str) -> Optional[Link]:
        for link in self._adjacency.get(router_a, []):
            if link.other_end(router_a).router == router_b:
                return link
        return None

    def internal_routers(self) -> List[str]:
        return sorted(r.name for r in self.routers.values() if not r.external)

    def external_routers(self) -> List[str]:
        return sorted(r.name for r in self.routers.values() if r.external)

    def interface_prefixes(self, router: str) -> List[Prefix]:
        return [i.prefix for i in self.router(router).interfaces.values()]

    def owner_of_address(self, address: int) -> Optional[str]:
        """Which router owns ``address`` on one of its interfaces."""
        for router in self.routers.values():
            for iface in router.interfaces.values():
                if iface.address == address:
                    return router.name
        return None

    def validate(self) -> List[str]:
        """Sanity checks; returns a list of problems (empty if clean)."""
        problems: List[str] = []
        seen_addresses: Dict[int, str] = {}
        for router in self.routers.values():
            for iface in router.interfaces.values():
                owner = seen_addresses.get(iface.address)
                if owner is not None and owner != router.name:
                    problems.append(
                        f"address {format_ip(iface.address)} on both "
                        f"{owner} and {router.name}"
                    )
                seen_addresses[iface.address] = router.name
        for link in self.links.values():
            if link.a.prefix != link.b.prefix:
                problems.append(f"link {link.key} endpoints in different subnets")
        for name in self.routers:
            if not self._adjacency[name] and len(self.routers) > 1:
                problems.append(f"router {name} has no links")
        return problems

    def __iter__(self) -> Iterator[Router]:
        return iter(self.routers.values())

    def __len__(self) -> int:
        return len(self.routers)

    def __str__(self) -> str:
        return (
            f"Topology({self.name}: {len(self.routers)} routers, "
            f"{len(self.links)} links)"
        )


# -- builders ------------------------------------------------------------


def _link_subnets() -> Iterator[Prefix]:
    """An endless supply of distinct /30 transfer subnets."""
    base = parse_ip("10.255.0.0")
    index = 0
    while True:
        yield Prefix(base + index * 4, 30)
        index += 1


def line_topology(n: int, asn: int = 65000, delay: float = 0.008) -> Topology:
    """R0 - R1 - ... - R(n-1) in a single AS."""
    if n < 1:
        raise TopologyError("need at least one router")
    topo = Topology(f"line{n}")
    subnets = _link_subnets()
    for i in range(n):
        topo.add_router(
            Router(f"R{i}", asn=asn, loopback=parse_ip("192.168.0.1") + i)
        )
    for i in range(n - 1):
        topo.connect(f"R{i}", f"R{i + 1}", next(subnets), delay=delay)
    return topo


def ring_topology(n: int, asn: int = 65000, delay: float = 0.008) -> Topology:
    """A cycle of ``n`` routers in a single AS."""
    if n < 3:
        raise TopologyError("a ring needs at least three routers")
    topo = line_topology(n, asn=asn, delay=delay)
    topo.name = f"ring{n}"
    topo.connect(f"R{n - 1}", "R0", Prefix(parse_ip("10.254.0.0"), 30), delay=delay)
    return topo


def grid_topology(
    rows: int, cols: int, asn: int = 65000, delay: float = 0.008
) -> Topology:
    """A rows x cols grid; router names are ``R<r>_<c>``."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    topo = Topology(f"grid{rows}x{cols}")
    subnets = _link_subnets()
    for r in range(rows):
        for c in range(cols):
            topo.add_router(
                Router(
                    f"R{r}_{c}",
                    asn=asn,
                    loopback=parse_ip("192.168.0.1") + r * cols + c,
                )
            )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.connect(f"R{r}_{c}", f"R{r}_{c + 1}", next(subnets), delay=delay)
            if r + 1 < rows:
                topo.connect(f"R{r}_{c}", f"R{r + 1}_{c}", next(subnets), delay=delay)
    return topo


def full_mesh_topology(n: int, asn: int = 65000, delay: float = 0.008) -> Topology:
    """Every pair of routers directly connected."""
    if n < 2:
        raise TopologyError("a mesh needs at least two routers")
    topo = Topology(f"mesh{n}")
    subnets = _link_subnets()
    for i in range(n):
        topo.add_router(
            Router(f"R{i}", asn=asn, loopback=parse_ip("192.168.0.1") + i)
        )
    for i in range(n):
        for j in range(i + 1, n):
            topo.connect(f"R{i}", f"R{j}", next(subnets), delay=delay)
    return topo


def paper_topology(delay: float = 0.008) -> Topology:
    """The three-router network of the paper's Figs. 1, 2, 4, and 5.

    R1, R2, R3 in AS 65000 form an iBGP triangle; external routers
    Ext1 (peering with R1) and Ext2 (peering with R2) in AS 65001 and
    AS 65002 provide the two uplinks.  The external prefix P of the
    examples is ``203.0.113.0/24`` (exported via :func:`paper_prefix`).
    """
    topo = Topology("hotnets17")
    subnets = _link_subnets()
    for i, name in enumerate(("R1", "R2", "R3")):
        topo.add_router(
            Router(name, asn=65000, loopback=parse_ip("192.168.0.1") + i)
        )
    topo.add_router(
        Router("Ext1", asn=65001, loopback=parse_ip("192.168.1.1"), external=True)
    )
    topo.add_router(
        Router("Ext2", asn=65002, loopback=parse_ip("192.168.1.2"), external=True)
    )
    topo.connect("R1", "R2", next(subnets), delay=delay)
    topo.connect("R1", "R3", next(subnets), delay=delay)
    topo.connect("R2", "R3", next(subnets), delay=delay)
    topo.connect("R1", "Ext1", next(subnets), delay=delay)
    topo.connect("R2", "Ext2", next(subnets), delay=delay)
    return topo


def paper_prefix() -> Prefix:
    """The external prefix P used throughout the paper's examples."""
    return Prefix.parse("203.0.113.0/24")
