"""Deterministic discrete-event simulator.

This is the substrate that replaces the paper's GNS3/Cisco emulation.
The properties the paper's argument depends on — asynchronous message
propagation, per-router processing delay, FIB-install delay, and the
resulting impossibility of a total order on FIB updates (§5) — are
all reproduced here, but deterministically: the event heap breaks
ties by (time, priority, sequence), and all jitter comes from a
seeded RNG, so every scenario replays bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import obs


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, priority, seq): priority lets hardware events
    (link failures) pre-empt protocol processing scheduled for the
    same instant, and seq makes the order total and deterministic.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event heap + clock + seeded RNG.

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(0.5, lambda: do_something(), label="kick")
        sim.run()
    """

    def __init__(self, seed: int = 0):
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Optional hook invoked with every event just before it fires;
        #: used by the capture layer and by tests to trace execution.
        self.trace_hook: Optional[Callable[[Event], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
        priority: int = 10,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            priority=priority,
            seq=next(self._seq),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
        priority: int = 10,
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        return self.schedule(time - self._now, action, label=label, priority=priority)

    def jitter(self, base: float, fraction: float = 0.1) -> float:
        """A delay of ``base`` seconds +/- up to ``fraction`` of it.

        Deterministic given the simulator seed.  Used for per-router
        processing delays so FIB updates do not land in lockstep —
        the asynchrony at the heart of the Fig. 1c snapshot problem.
        """
        if base < 0:
            raise SimulationError(f"negative base delay: {base}")
        if base == 0:
            return 0.0
        spread = base * fraction
        return max(0.0, base + self.rng.uniform(-spread, spread))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when the next event is past
        ``until``, or after ``max_events`` (guarding against protocol
        oscillation bugs).  Returns the number of events processed.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        processed = 0
        registry = obs.get_registry()
        recorder = obs.get_recorder()
        if registry.enabled:
            watch = registry.stopwatch()
        try:
            while self._heap:
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible protocol oscillation"
                    )
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                if self.trace_hook is not None:
                    self.trace_hook(event)
                if recorder.enabled:
                    recorder.record(
                        obs.TraceKind.SIM_EVENT,
                        at=event.time,
                        detail=event.label,
                        priority=event.priority,
                    )
                event.action()
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
            if registry.enabled:
                wall = watch.elapsed()
                registry.counter("sim.runs_total").inc()
                registry.counter("sim.events_processed_total").inc(processed)
                registry.histogram("sim.run_wall_seconds").observe(wall)
                registry.histogram("sim.run_events").observe(processed)
                if wall > 0 and processed:
                    registry.gauge("sim.events_per_wall_second").set(
                        processed / wall
                    )
        # Advance the clock to the horizon even when the next event
        # lies beyond it — otherwise repeated run(until=now+step)
        # calls would never make progress across quiet periods.
        if until is not None and self._now < until:
            self._now = until
        return processed

    def run_until_quiescent(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain; returns the last event's time."""
        self.run(max_events=max_events)
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when idle."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None


class DelayModel:
    """Per-router processing-delay profile.

    The §7 feasibility study measured characteristic delays on Cisco
    routers: ~25 s from TTY config to soft reconfiguration, ~4 ms
    from decision to FIB install, ~8 ms advertisement propagation,
    ~0.1 ms for a pre-computed FIB write.  These defaults reproduce
    that regime; tests and benchmarks override them freely.
    """

    def __init__(
        self,
        fib_install: float = 0.004,
        rib_update: float = 0.001,
        advertisement: float = 0.004,
        config_to_reconfig: float = 25.0,
        spf_compute: float = 0.002,
    ):
        for name, value in (
            ("fib_install", fib_install),
            ("rib_update", rib_update),
            ("advertisement", advertisement),
            ("config_to_reconfig", config_to_reconfig),
            ("spf_compute", spf_compute),
        ):
            if value < 0:
                raise SimulationError(f"negative delay {name}={value}")
        self.fib_install = fib_install
        self.rib_update = rib_update
        self.advertisement = advertisement
        self.config_to_reconfig = config_to_reconfig
        self.spf_compute = spf_compute

    @classmethod
    def instant(cls) -> "DelayModel":
        """All-zero delays; useful for logic-only unit tests."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0)

    @classmethod
    def paper_fig5(cls) -> "DelayModel":
        """The exact delays reported in the paper's Fig. 5."""
        return cls(
            fib_install=0.004,
            rib_update=0.0001,
            advertisement=0.004,
            config_to_reconfig=25.0,
            spf_compute=0.002,
        )
