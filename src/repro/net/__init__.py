"""Network substrate: addressing, topology, configuration, simulation.

This subpackage provides everything the paper's feasibility study got
from GNS3 and Cisco VM images: a topology model, a vendor-neutral
configuration model, and a deterministic discrete-event simulator that
reproduces the asynchrony (propagation delay, FIB-install delay,
reconfiguration lag) that makes data-plane snapshots inconsistent.
"""

from repro.net.addr import Prefix, PrefixTrie, format_ip, parse_ip
from repro.net.topology import Interface, Link, Router, Topology
from repro.net.config import (
    BgpNeighborConfig,
    ConfigChange,
    ConfigStore,
    OspfInterfaceConfig,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    StaticRouteConfig,
)
from repro.net.simulator import Event, Simulator

__all__ = [
    "BgpNeighborConfig",
    "ConfigChange",
    "ConfigStore",
    "Event",
    "Interface",
    "Link",
    "OspfInterfaceConfig",
    "Prefix",
    "PrefixTrie",
    "RouteMap",
    "RouteMapClause",
    "Router",
    "RouterConfig",
    "Simulator",
    "StaticRouteConfig",
    "Topology",
    "format_ip",
    "parse_ip",
]
