"""Vendor-neutral router configuration model.

The paper's repair mechanism (§6) reverts *configuration changes* — a
root-cause leaf in the happens-before graph is typically a config
change (Fig. 4) — so configuration here is first-class and versioned:

* :class:`RouterConfig` — everything a router needs to run its
  protocol instances (BGP neighbors, route-maps, OSPF interfaces,
  static routes, redistribution).
* :class:`ConfigChange` — a reversible delta, carrying both the new
  and the previous value, so rollback is a pure data operation.
* :class:`ConfigStore` — a per-router version history supporting
  revert-to-version, which is exactly the "version system for
  configurations" §7 says makes rollback easy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.addr import Prefix


class ConfigError(ValueError):
    """Raised for malformed or inconsistent configuration."""


# -- route-maps -----------------------------------------------------------


@dataclass(frozen=True)
class RouteMapClause:
    """One match/set clause of a route-map.

    ``match_prefix`` of None matches every prefix.  Only the actions
    needed by the paper's scenarios (and typical enterprise policies)
    are modelled: set local-pref, set MED, prepend AS path, permit or
    deny.
    """

    permit: bool = True
    match_prefix: Optional[Prefix] = None
    match_exact: bool = False
    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    prepend_asns: Tuple[int, ...] = ()

    def matches(self, prefix: Prefix) -> bool:
        if self.match_prefix is None:
            return True
        if self.match_exact:
            return self.match_prefix == prefix
        return self.match_prefix.contains(prefix)


@dataclass(frozen=True)
class RouteMap:
    """An ordered sequence of clauses; first matching clause wins.

    A route that matches no clause is denied, matching IOS semantics
    (implicit deny at the end of every route-map).
    """

    name: str
    clauses: Tuple[RouteMapClause, ...] = ()

    def first_match(self, prefix: Prefix) -> Optional[RouteMapClause]:
        for clause in self.clauses:
            if clause.matches(prefix):
                return clause
        return None


def permit_all_map(name: str = "permit-all") -> RouteMap:
    """A route-map that permits everything unchanged."""
    return RouteMap(name, (RouteMapClause(permit=True),))


def local_pref_map(name: str, local_pref: int) -> RouteMap:
    """A route-map that permits everything and sets one local-pref.

    This is the paper's policy mechanism: "operators configure a
    local preference (LP) of 30 on R2 and 20 on R1" (§2).
    """
    return RouteMap(name, (RouteMapClause(permit=True, set_local_pref=local_pref),))


# -- per-protocol configuration -------------------------------------------


@dataclass(frozen=True)
class BgpNeighborConfig:
    """Configuration of one BGP session from this router's side."""

    peer: str
    remote_asn: int
    import_map: Optional[str] = None
    export_map: Optional[str] = None
    next_hop_self: bool = False
    add_path: bool = False
    soft_reconfiguration: bool = True
    #: RFC 4456: treat this iBGP peer as a route-reflector client
    #: (this router acts as the reflector on the session).
    route_reflector_client: bool = False

    def is_external(self, local_asn: int) -> bool:
        return self.remote_asn != local_asn


@dataclass(frozen=True)
class OspfInterfaceConfig:
    """OSPF participation of one interface."""

    interface: str
    cost: int = 10
    area: int = 0
    passive: bool = False

    def __post_init__(self) -> None:
        if self.cost < 1:
            raise ConfigError(f"OSPF cost must be positive, got {self.cost}")


@dataclass(frozen=True)
class StaticRouteConfig:
    """A static route: prefix via next-hop address (or discard)."""

    prefix: Prefix
    next_hop: Optional[int] = None
    discard: bool = False

    def __post_init__(self) -> None:
        if self.next_hop is None and not self.discard:
            raise ConfigError(f"static route {self.prefix} needs next_hop or discard")


@dataclass(frozen=True)
class RedistributionConfig:
    """Redistribute routes from ``source`` protocol into ``target``."""

    source: str
    target: str
    route_map: Optional[str] = None


# -- router configuration --------------------------------------------------


#: Default administrative distances, Cisco-flavoured.
DEFAULT_ADMIN_DISTANCE: Dict[str, int] = {
    "connected": 0,
    "static": 1,
    "ebgp": 20,
    "eigrp": 90,
    "ospf": 110,
    "ibgp": 200,
}


@dataclass
class RouterConfig:
    """The complete configuration of one router.

    Mutation happens only through :meth:`apply`, which takes a
    :class:`ConfigChange` and returns the updated config — keeping
    every change reversible and observable (a config change is a
    control-plane *input* in the paper's I/O taxonomy, §4.1).
    """

    router: str
    asn: int = 65000
    router_id: int = 0
    bgp_neighbors: Dict[str, BgpNeighborConfig] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    ospf_interfaces: Dict[str, OspfInterfaceConfig] = field(default_factory=dict)
    static_routes: List[StaticRouteConfig] = field(default_factory=list)
    redistributions: List[RedistributionConfig] = field(default_factory=list)
    originated_prefixes: List[Prefix] = field(default_factory=list)
    #: Run the EIGRP-style distance-vector protocol on this router.
    dv_enabled: bool = False
    #: Prefixes this router originates into the DV protocol.
    dv_originated: List[Prefix] = field(default_factory=list)
    admin_distance: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_ADMIN_DISTANCE)
    )

    def add_bgp_neighbor(self, neighbor: BgpNeighborConfig) -> None:
        if neighbor.peer in self.bgp_neighbors:
            raise ConfigError(f"{self.router}: duplicate BGP neighbor {neighbor.peer}")
        self.bgp_neighbors[neighbor.peer] = neighbor

    def add_route_map(self, route_map: RouteMap) -> None:
        self.route_maps[route_map.name] = route_map

    def route_map(self, name: Optional[str]) -> Optional[RouteMap]:
        if name is None:
            return None
        try:
            return self.route_maps[name]
        except KeyError:
            raise ConfigError(f"{self.router}: unknown route-map {name!r}") from None

    def import_map_for(self, peer: str) -> Optional[RouteMap]:
        neighbor = self.bgp_neighbors.get(peer)
        if neighbor is None:
            return None
        return self.route_map(neighbor.import_map)

    def export_map_for(self, peer: str) -> Optional[RouteMap]:
        neighbor = self.bgp_neighbors.get(peer)
        if neighbor is None:
            return None
        return self.route_map(neighbor.export_map)

    def snapshot(self) -> "RouterConfig":
        """A deep-enough copy for versioning (frozen leaves shared)."""
        return RouterConfig(
            router=self.router,
            asn=self.asn,
            router_id=self.router_id,
            bgp_neighbors=dict(self.bgp_neighbors),
            route_maps=dict(self.route_maps),
            ospf_interfaces=dict(self.ospf_interfaces),
            static_routes=list(self.static_routes),
            redistributions=list(self.redistributions),
            originated_prefixes=list(self.originated_prefixes),
            dv_enabled=self.dv_enabled,
            dv_originated=list(self.dv_originated),
            admin_distance=dict(self.admin_distance),
        )

    def apply(self, change: "ConfigChange") -> None:
        """Apply ``change`` in place. Raises ConfigError on mismatch."""
        change.apply_to(self)


# -- config changes ---------------------------------------------------------

_change_ids = itertools.count(1)


@dataclass
class ConfigChange:
    """A reversible configuration delta.

    ``kind`` selects the mutation; ``key``/``value`` parameterise it;
    ``previous`` is filled in at apply time so :meth:`inverted` can
    produce the exact rollback.  Supported kinds:

    - ``set_route_map``: replace/insert a route-map (key = map name,
      value = RouteMap).  This covers the paper's "set LP to 10" change.
    - ``set_neighbor``: replace/insert a BGP neighbor config.
    - ``remove_neighbor``: delete a BGP neighbor.
    - ``set_static``: replace the full static route list.
    - ``set_originated``: replace the originated prefix list.
    - ``set_ospf_cost``: change one OSPF interface cost.
    """

    router: str
    kind: str
    key: Optional[str] = None
    value: Any = None
    previous: Any = None
    change_id: int = field(default_factory=lambda: next(_change_ids))
    description: str = ""

    _KINDS = (
        "set_route_map",
        "set_neighbor",
        "remove_neighbor",
        "set_static",
        "set_originated",
        "set_dv_originated",
        "set_ospf_cost",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigError(f"unknown config change kind {self.kind!r}")

    def apply_to(self, config: RouterConfig) -> None:
        if config.router != self.router:
            raise ConfigError(
                f"change for {self.router} applied to {config.router}"
            )
        if self.kind == "set_route_map":
            if self.key is None or not isinstance(self.value, RouteMap):
                raise ConfigError("set_route_map needs key and RouteMap value")
            self.previous = config.route_maps.get(self.key)
            config.route_maps[self.key] = self.value
        elif self.kind == "set_neighbor":
            if self.key is None or not isinstance(self.value, BgpNeighborConfig):
                raise ConfigError("set_neighbor needs key and BgpNeighborConfig")
            self.previous = config.bgp_neighbors.get(self.key)
            config.bgp_neighbors[self.key] = self.value
        elif self.kind == "remove_neighbor":
            if self.key is None:
                raise ConfigError("remove_neighbor needs key")
            self.previous = config.bgp_neighbors.pop(self.key, None)
        elif self.kind == "set_static":
            self.previous = list(config.static_routes)
            config.static_routes = list(self.value or [])
        elif self.kind == "set_originated":
            self.previous = list(config.originated_prefixes)
            config.originated_prefixes = list(self.value or [])
        elif self.kind == "set_dv_originated":
            self.previous = list(config.dv_originated)
            config.dv_originated = list(self.value or [])
        elif self.kind == "set_ospf_cost":
            if self.key is None:
                raise ConfigError("set_ospf_cost needs interface key")
            current = config.ospf_interfaces.get(self.key)
            if current is None:
                raise ConfigError(f"no OSPF config on interface {self.key}")
            self.previous = current
            config.ospf_interfaces[self.key] = replace(current, cost=int(self.value))

    def inverted(self) -> "ConfigChange":
        """The change that undoes this one (valid after apply)."""
        if self.kind == "set_route_map":
            if self.previous is None:
                # The map did not exist before: rollback re-installs a
                # permit-all placeholder is wrong; instead we restore by
                # replacing with a deny-nothing map is also wrong.  The
                # faithful inverse is deletion, modelled as replacing
                # with the previous value; absence is encoded as a
                # permit-all map only when the caller never referenced
                # the map before.  We keep it simple and explicit:
                raise ConfigError(
                    f"cannot invert creation of route-map {self.key!r} "
                    "(no previous value)"
                )
            return ConfigChange(
                self.router,
                "set_route_map",
                key=self.key,
                value=self.previous,
                description=f"revert change #{self.change_id}",
            )
        if self.kind == "set_neighbor":
            if self.previous is None:
                return ConfigChange(
                    self.router,
                    "remove_neighbor",
                    key=self.key,
                    description=f"revert change #{self.change_id}",
                )
            return ConfigChange(
                self.router,
                "set_neighbor",
                key=self.key,
                value=self.previous,
                description=f"revert change #{self.change_id}",
            )
        if self.kind == "remove_neighbor":
            if self.previous is None:
                raise ConfigError("nothing to restore: neighbor did not exist")
            return ConfigChange(
                self.router,
                "set_neighbor",
                key=self.key,
                value=self.previous,
                description=f"revert change #{self.change_id}",
            )
        if self.kind in ("set_static", "set_originated", "set_dv_originated"):
            return ConfigChange(
                self.router,
                self.kind,
                value=list(self.previous or []),
                description=f"revert change #{self.change_id}",
            )
        if self.kind == "set_ospf_cost":
            previous = self.previous
            if previous is None:
                raise ConfigError("nothing to restore: no previous OSPF cost")
            return ConfigChange(
                self.router,
                "set_ospf_cost",
                key=self.key,
                value=previous.cost,
                description=f"revert change #{self.change_id}",
            )
        raise ConfigError(f"cannot invert kind {self.kind!r}")

    def __str__(self) -> str:
        label = self.description or f"{self.kind}({self.key})"
        return f"ConfigChange#{self.change_id}[{self.router}: {label}]"


# -- versioned store ---------------------------------------------------------


class ConfigStore:
    """Versioned configuration for every router in the network.

    Every applied :class:`ConfigChange` creates a new version; the
    store can revert a single change (by inverse) or roll a router
    back to any prior version.  §7: "this information, coupled with a
    version system for configurations, is enough to allow easy manual
    rollback, and creates the premises for automated rollback."
    """

    def __init__(self, configs: Iterable[RouterConfig]):
        self._current: Dict[str, RouterConfig] = {}
        self._history: Dict[str, List[Tuple[Optional[ConfigChange], RouterConfig]]] = {}
        for config in configs:
            if config.router in self._current:
                raise ConfigError(f"duplicate config for {config.router}")
            self._current[config.router] = config
            self._history[config.router] = [(None, config.snapshot())]

    def routers(self) -> List[str]:
        return sorted(self._current)

    def get(self, router: str) -> RouterConfig:
        try:
            return self._current[router]
        except KeyError:
            raise ConfigError(f"no config for router {router!r}") from None

    def version_of(self, router: str) -> int:
        return len(self._history[router]) - 1

    def apply(self, change: ConfigChange) -> RouterConfig:
        """Apply ``change`` and record the new version."""
        config = self.get(change.router)
        config.apply(change)
        self._history[change.router].append((change, config.snapshot()))
        return config

    def revert_change(self, change: ConfigChange) -> ConfigChange:
        """Apply the inverse of ``change``; returns the inverse applied."""
        inverse = change.inverted()
        self.apply(inverse)
        return inverse

    def revert_to_version(self, router: str, version: int) -> RouterConfig:
        """Restore ``router`` to a historical version (new version made)."""
        history = self._history[router]
        if not 0 <= version < len(history):
            raise ConfigError(
                f"{router} has versions 0..{len(history) - 1}, asked for {version}"
            )
        _, snapshot = history[version]
        restored = snapshot.snapshot()
        self._current[router] = restored
        history.append((None, restored.snapshot()))
        return restored

    def history(self, router: str) -> Sequence[Tuple[Optional[ConfigChange], RouterConfig]]:
        return tuple(self._history[router])

    def changes(self, router: str) -> List[ConfigChange]:
        return [c for c, _ in self._history[router] if c is not None]
