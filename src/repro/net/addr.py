"""IPv4 addressing primitives.

Addresses are plain 32-bit integers; :class:`Prefix` is an immutable
(address, length) pair normalised so that host bits are zero.  A
binary :class:`PrefixTrie` provides longest-prefix-match lookups for
FIBs and header-space computations.

The standard library ``ipaddress`` module is deliberately avoided in
hot paths: FIB lookups and header-space intersection run millions of
times in the scaling benchmarks, and integer arithmetic on plain ints
is several times faster than ``IPv4Network`` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, TypeVar

IPV4_BITS = 32
IPV4_MAX = (1 << IPV4_BITS) - 1

V = TypeVar("V")


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= IPV4_MAX:
        raise AddressError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _mask(length: int) -> int:
    """Network mask for a prefix of ``length`` bits."""
    if length == 0:
        return 0
    return (IPV4_MAX << (IPV4_BITS - length)) & IPV4_MAX


class Prefix:
    """An immutable IPv4 prefix (network address + length).

    Instances are normalised (host bits cleared), hashable, and
    totally ordered by (address, length) so RIB dumps are stable.
    """

    __slots__ = ("address", "length")

    def __init__(self, address: int, length: int):
        if not 0 <= length <= IPV4_BITS:
            raise AddressError(f"prefix length out of range: {length}")
        if not 0 <= address <= IPV4_MAX:
            raise AddressError(f"address out of range: {address}")
        object.__setattr__(self, "address", address & _mask(length))
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/8"`` (or a bare address as a /32)."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"bad prefix length in {text!r}")
            return cls(parse_ip(addr_text), int(len_text))
        return cls(parse_ip(text), IPV4_BITS)

    @classmethod
    def default(cls) -> "Prefix":
        """The default route, 0.0.0.0/0."""
        return cls(0, 0)

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than self."""
        if other.length < self.length:
            return False
        return (other.address & _mask(self.length)) == self.address

    def contains_address(self, address: int) -> bool:
        """True if the 32-bit ``address`` falls inside this prefix."""
        return (address & _mask(self.length)) == self.address

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self) -> "Prefix":
        """The immediately enclosing prefix (one bit shorter)."""
        if self.length == 0:
            raise AddressError("0.0.0.0/0 has no supernet")
        return Prefix(self.address, self.length - 1)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """The two immediate sub-prefixes (one bit longer)."""
        if self.length == IPV4_BITS:
            raise AddressError("/32 has no subnets")
        length = self.length + 1
        low = Prefix(self.address, length)
        high = Prefix(self.address | (1 << (IPV4_BITS - length)), length)
        return low, high

    def first_address(self) -> int:
        return self.address

    def last_address(self) -> int:
        return self.address | (IPV4_MAX >> self.length if self.length else IPV4_MAX)

    def num_addresses(self) -> int:
        return 1 << (IPV4_BITS - self.length)

    def bit(self, index: int) -> int:
        """The ``index``-th bit (0 = most significant) of the address."""
        if not 0 <= index < IPV4_BITS:
            raise AddressError(f"bit index out of range: {index}")
        return (self.address >> (IPV4_BITS - 1 - index)) & 1

    def key(self) -> Tuple[int, int]:
        """Sort/dedup key."""
        return (self.address, self.length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.address == other.address and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "Prefix") -> bool:
        return self.key() <= other.key()

    def __gt__(self, other: "Prefix") -> bool:
        return self.key() > other.key()

    def __ge__(self, other: "Prefix") -> bool:
        return self.key() >= other.key()

    def __hash__(self) -> int:
        return hash((self.address, self.length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{format_ip(self.address)}/{self.length}"


class _TrieNode:
    """Internal node of :class:`PrefixTrie`."""

    __slots__ = ("value", "has_value", "children")

    def __init__(self) -> None:
        self.value: Optional[object] = None
        self.has_value = False
        self.children: List[Optional["_TrieNode"]] = [None, None]


class PrefixTrie:
    """A binary trie mapping :class:`Prefix` keys to values.

    Supports exact insert/delete/lookup plus longest-prefix-match,
    which is what a FIB needs.  Iteration yields entries in
    (address, length) order.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not None or self._has_exact(prefix)

    def _has_exact(self, prefix: Prefix) -> bool:
        node = self._walk(prefix)
        return node is not None and node.has_value

    def _walk(self, prefix: Prefix) -> Optional[_TrieNode]:
        node: Optional[_TrieNode] = self._root
        for index in range(prefix.length):
            if node is None:
                return None
            node = node.children[prefix.bit(index)]
        return node

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value for ``prefix``."""
        node = self._root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix) -> Optional[V]:
        """Exact-match lookup; None when absent."""
        node = self._walk(prefix)
        if node is None or not node.has_value:
            return None
        return node.value  # type: ignore[return-value]

    def delete(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; returns True if it was present."""
        path: List[Tuple[_TrieNode, int]] = []
        node = self._root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        # Prune empty leaf chains so memory does not grow monotonically
        # under churn workloads.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is None:
                break
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return True

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix-match for a 32-bit ``address``.

        Returns the (prefix, value) of the most specific covering
        entry, or None when no entry covers the address.
        """
        node: Optional[_TrieNode] = self._root
        best: Optional[Tuple[int, object]] = None
        depth = 0
        while node is not None:
            if node.has_value:
                best = (depth, node.value)
            if depth == IPV4_BITS:
                break
            bit = (address >> (IPV4_BITS - 1 - depth)) & 1
            node = node.children[bit]
            depth += 1
        if best is None:
            return None
        length, value = best
        return Prefix(address, length), value  # type: ignore[return-value]

    def longest_match_prefix(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Most specific entry that *covers* ``prefix`` entirely."""
        node: Optional[_TrieNode] = self._root
        best: Optional[Tuple[int, object]] = None
        for depth in range(prefix.length + 1):
            if node is None:
                break
            if node.has_value:
                best = (depth, node.value)
            if depth == prefix.length:
                break
            node = node.children[prefix.bit(depth)]
        if best is None:
            return None
        length, value = best
        return Prefix(prefix.address, length), value  # type: ignore[return-value]

    def covered_by(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All entries equal to or more specific than ``prefix``."""
        node = self._walk(prefix)
        if node is None:
            return
        yield from self._iterate(node, prefix.address, prefix.length)

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All (prefix, value) entries in (address, length) order."""
        yield from self._iterate(self._root, 0, 0)

    def _iterate(
        self, node: _TrieNode, address: int, depth: int
    ) -> Iterator[Tuple[Prefix, V]]:
        if node.has_value:
            yield Prefix(address, depth), node.value  # type: ignore[misc]
        if depth == IPV4_BITS:
            return
        low, high = node.children
        if low is not None:
            yield from self._iterate(low, address, depth + 1)
        if high is not None:
            bit_value = 1 << (IPV4_BITS - 1 - depth)
            yield from self._iterate(high, address | bit_value, depth + 1)

    def to_dict(self) -> Dict[Prefix, V]:
        return dict(self.items())


def summarize(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Collapse ``prefixes`` into a minimal covering list.

    Removes prefixes covered by others and merges sibling pairs into
    their supernet, repeatedly, until a fixed point.  Used by the
    equivalence-class machinery to report compact class descriptions.
    """
    work = sorted(set(prefixes))
    # Drop entries covered by an earlier (shorter or equal) entry.
    kept: List[Prefix] = []
    for prefix in work:
        if kept and kept[-1].contains(prefix):
            continue
        kept = [p for p in kept if not prefix.contains(p)]
        kept.append(prefix)
    # Merge exact sibling pairs bottom-up until stable.
    merged = True
    while merged:
        merged = False
        by_key = {p.key(): p for p in kept}
        result: List[Prefix] = []
        consumed = set()
        for prefix in kept:
            if prefix.key() in consumed:
                continue
            if prefix.length > 0:
                parent = prefix.supernet()
                low, high = parent.subnets()
                sibling = high if prefix == low else low
                if sibling.key() in by_key and sibling.key() not in consumed:
                    consumed.add(prefix.key())
                    consumed.add(sibling.key())
                    result.append(parent)
                    merged = True
                    continue
            result.append(prefix)
        kept = sorted(set(result))
    return kept
