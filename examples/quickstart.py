#!/usr/bin/env python3
"""Quickstart: catch and auto-repair a BGP misconfiguration.

Recreates the paper's running example end to end:

1. build the three-router network of Figs. 1/2 (R1/R2/R3 in one AS,
   two external uplinks, preferred-exit policy via local-pref);
2. converge to the correct state (everyone exits via R2);
3. arm the integrated pipeline (Fig. 3) — every FIB write is verified
   before install, with provenance tracked through the
   happens-before graph;
4. apply the Fig. 2a misconfiguration (R2's uplink local-pref 30->10);
5. watch the pipeline block the poisoned updates, trace them to the
   config change, and revert it automatically.

Run:  python examples/quickstart.py
"""

from repro.core import IntegratedControlPlane, PipelineMode
from repro.scenarios import Fig2Scenario, paper_policy
from repro.scenarios.fig2 import bad_lp_change
from repro.scenarios.paper_net import P
from repro.verify.policy import LoopFreedomPolicy


def show_data_plane(net, title):
    print(f"\n--- {title} ---")
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        print(f"  {router}: {' -> '.join(path)}  [{outcome}]")


def main():
    print("Building the HotNets'17 three-router network...")
    scenario = Fig2Scenario(seed=0)
    net = scenario.run_baseline()
    show_data_plane(net, "converged baseline (policy: exit via R2)")

    print("\nArming the integrated verification/repair pipeline...")
    pipeline = IntegratedControlPlane(
        net,
        [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
        mode=PipelineMode.REPAIR,
    ).arm()

    change = bad_lp_change()
    print(f"\nOperator applies a bad change: {change}")
    net.apply_config_change(change)
    net.run(120)

    print("\n" + pipeline.summary())
    show_data_plane(net, "after the episode")

    lp = net.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
    print(f"\nR2 uplink local-pref is back to {lp.set_local_pref} "
          f"(the change was reverted automatically).")
    print(f"Policy violated now? {scenario.violates_policy()}")


if __name__ == "__main__":
    main()
