#!/usr/bin/env python3
"""A fuller tour: auditing a synthetic enterprise network.

Builds a random 8-router single-AS network (OSPF underlay, iBGP full
mesh, two external uplinks), subjects it to route churn, and then
runs the paper's whole toolbox over the capture:

* HBR inference accuracy against the simulator's ground truth;
* forwarding equivalence classes (the §6 compression);
* distributed verification cost vs a centralized verifier;
* a misconfiguration + offline root-cause repair.

Run:  python examples/enterprise_audit.py
"""

from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.hbr.inference import InferenceEngine, score_inference
from repro.net.config import ConfigChange, local_pref_map
from repro.repair.equivalence import PrefixGrouper
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.distributed import (
    DistributedVerifier,
    centralized_equivalent_stats,
)
from repro.verify.headerspace import compute_equivalence_classes
from repro.verify.policy import LoopFreedomPolicy, PreferredExitPolicy


def main():
    print("Building a random 8-router enterprise network...")
    net, specs = build_random_network(8, uplinks=2, seed=42)
    net.start()
    prefixes = external_prefixes(6)
    for prefix in prefixes:
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
    print("Applying route churn...")
    churn_workload(net, specs, prefixes, events=12, start=5.0, seed=42)
    net.run(60)
    print(f"  captured {len(net.collector)} control-plane I/O events")

    print("\n[1] HBR inference vs ground truth:")
    graph = InferenceEngine().build_graph(net.collector.all_events())
    observable = {e.event_id for e in net.collector}
    score = score_inference(graph, net.ground_truth, observable_ids=observable)
    print(f"  {score}")

    print("\n[2] Forwarding equivalence classes (§6):")
    snapshot = DataPlaneSnapshot.from_live_network(net)
    classes = compute_equivalence_classes(snapshot)
    groups = PrefixGrouper().group(snapshot)
    print(f"  {len(snapshot.all_prefixes())} distinct prefixes in FIBs")
    print(f"  {len(classes)} address-space equivalence classes")
    print(f"  {len(groups)} prefix behaviour groups "
          f"({PrefixGrouper.compression(groups):.1f} prefixes/group)")

    print("\n[3] Distributed vs centralized verification (§5):")
    live_prefixes = sorted(prefixes, key=lambda p: p.key())
    distributed = DistributedVerifier(net.topology, snapshot)
    outcomes, dist_stats = distributed.verify_prefixes(live_prefixes)
    central = centralized_equivalent_stats(net.topology, snapshot, live_prefixes)
    print(f"  probes: {len(outcomes)}, all outcomes: "
          f"{sorted(set(o.outcome for o in outcomes))}")
    print(f"  central bottleneck work: {central.bottleneck_work} units at "
          f"one node")
    print(f"  distributed bottleneck:  {dist_stats.bottleneck_work} units "
          f"(max per node), latency {dist_stats.latency * 1000:.0f} ms")

    print("\n[4] Misconfiguration + offline detect-and-repair (§6):")
    preferred = max(specs, key=lambda s: s.local_pref)
    fallback = min(specs, key=lambda s: s.local_pref)
    policy = PreferredExitPolicy(
        prefix=prefixes[0],
        preferred_exit=preferred.router,
        fallback_exit=fallback.router,
        uplink_of={
            preferred.router: preferred.external,
            fallback.router: fallback.external,
        },
    )
    map_name = f"{preferred.router.lower()}-uplink-lp"
    net.apply_config_change(
        ConfigChange(
            preferred.router,
            "set_route_map",
            key=map_name,
            value=local_pref_map(map_name, 1),
            description="fat-fingered local-pref",
        )
    )
    net.run(60)
    pipeline = IntegratedControlPlane(net, [policy], mode=PipelineMode.REPAIR)
    violations, repair = pipeline.detect_and_repair(settle=60.0)
    print(f"  violations detected: {len(violations)}")
    if repair is not None:
        print("  " + repair.describe().replace("\n", "\n  "))
    lp = net.configs.get(preferred.router).route_maps[map_name].clauses[0]
    print(f"  preferred uplink LP after repair: {lp.set_local_pref} "
          f"(expected {preferred.local_pref})")


if __name__ == "__main__":
    main()
