#!/usr/bin/env python3
"""The Fig. 1c phantom loop, and how consistent snapshots avoid it.

A data-plane verifier reconstructs the network's FIBs from router
logs, but logs arrive with per-router lag.  During route propagation
this produces snapshots mixing new and stale FIBs — here, the classic
Fig. 1c artefact: R1 and R3 have switched to the route via R2 while
R2's new FIB has not reached the verifier, so the reconstruction
shows a loop R1 <-> R2 that never existed.

This example probes the convergence window with both snapshotters and
prints, instant by instant, what each one concludes.

Run:  python examples/snapshot_debugging.py
"""

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.policy import LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

R2_LOG_LAG = 0.5


def main():
    print("Running Fig. 1a -> Fig. 1b (route via R2 appears)...")
    scenario = Fig1Scenario(seed=0)
    net = scenario.run_fig1b()
    print(f"Ext2 announced P at t={scenario.t_r2_route:.3f}s; "
          f"R2's logs reach the verifier {R2_LOG_LAG * 1000:.0f} ms late.\n")

    view = VerifierView(net.collector, lags={"R2": R2_LOG_LAG})
    naive = NaiveSnapshotter(view)
    consistent = ConsistentSnapshotter(
        view, internal_routers=net.topology.internal_routers()
    )
    verifier = DataPlaneVerifier(net.topology, [LoopFreedomPolicy(prefixes=[P])])

    print(f"{'t (s)':>8}  {'naive verdict':<28}  consistent snapshotter")
    print("-" * 78)
    t = scenario.t_r2_route
    while t <= scenario.t_converged + R2_LOG_LAG + 0.05:
        naive_result = verifier.verify(naive.snapshot(t))
        if naive_result.ok:
            naive_text = "ok"
        else:
            v = naive_result.violations[0]
            naive_text = f"ALARM: {'->'.join(v.path)}"
        snapshot, report = consistent.snapshot(t, prefix=P)
        if report.consistent:
            result = verifier.verify(snapshot)
            cons_text = "ok (verified)" if result.ok else "ALARM"
        else:
            cons_text = f"deferred, wait for {sorted(report.missing_routers)}"
        print(f"{t:8.3f}  {naive_text:<28}  {cons_text}")
        t += 0.05

    print("\nThe naive verifier raised alarms for a loop that the real")
    print("data plane never contained; the HBG-based snapshotter instead")
    print("reported exactly which router's logs it was missing (§5/§7).")


if __name__ == "__main__":
    main()
