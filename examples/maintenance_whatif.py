#!/usr/bin/env python3
"""Pre-change vetting with what-if forking (§8).

Most outages start as maintenance-window config changes.  This
example shows the workflow the paper's §8 sketches on top of
CrystalNet-style emulation: before touching the live network, fork an
emulated copy, apply the proposed change there, and read the verdict.

Three proposals are vetted against the preferred-exit policy:

1. raising R2's uplink local-pref 30 -> 40 (harmless);
2. the Fig. 2a fat-finger, 30 -> 10 (violates);
3. a planned maintenance shutdown of the R2-Ext2 link (safe:
   the policy falls back to R1's uplink).

Run:  python examples/maintenance_whatif.py
"""

from repro.net.config import ConfigChange, local_pref_map
from repro.scenarios import Fig1Scenario, paper_policy
from repro.whatif.engine import WhatIfEngine, config_change, link_failure


def vet(engine, label, injections):
    print(f"\nProposal: {label}")
    result = engine.ask(injections)
    verdict = "APPROVE" if result.safe else "REJECT"
    print(f"  verdict: {verdict}")
    for violation in result.violations:
        print(f"    would cause: {violation}")
    if result.deltas:
        print(f"  forwarding changes ({len(result.deltas)}):")
        for delta in result.deltas:
            print(f"    {delta}")
    else:
        print("  no forwarding changes")
    return result


def main():
    print("Converging the live network (Fig. 1b state, exit via R2)...")
    scenario = Fig1Scenario(seed=0)
    live = scenario.run_fig1b()
    engine = WhatIfEngine(live, [paper_policy()], settle=60.0)

    raise_lp = ConfigChange(
        "R2",
        "set_route_map",
        key="r2-uplink-lp",
        value=local_pref_map("r2-uplink-lp", 40),
        description="raise uplink LP to 40",
    )
    vet(engine, "raise R2 uplink local-pref 30 -> 40",
        [config_change(raise_lp)])

    fat_finger = ConfigChange(
        "R2",
        "set_route_map",
        key="r2-uplink-lp",
        value=local_pref_map("r2-uplink-lp", 10),
        description="set uplink LP to 10",
    )
    vet(engine, "the Fig. 2a fat-finger (LP 30 -> 10)",
        [config_change(fat_finger)])

    vet(engine, "planned shutdown of the R2-Ext2 link",
        [link_failure("R2", "Ext2")])

    print("\nThe live network was never modified:")
    lp = live.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
    print(f"  R2 uplink local-pref is still {lp.set_local_pref}")
    print(f"  R2-Ext2 link is "
          f"{'up' if live.topology.link_between('R2', 'Ext2').up else 'down'}")


if __name__ == "__main__":
    main()
