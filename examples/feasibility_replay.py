#!/usr/bin/env python3
"""Replay of the paper's §7 feasibility study (Fig. 5).

The original experiment ran three Cisco VM images in GNS3, changed
R1's uplink local-pref to 200, and harvested router logs by hand.
This replay drives the same scenario on the simulator with the
paper's measured delay constants, then:

* prints the Fig. 5 timeline (config -> 25 s -> soft reconfig ->
  4 ms -> FIB -> announce -> 8 ms -> neighbors -> withdrawals);
* builds the happens-before graph from the captured logs and prints
  the root cause of the data-plane change;
* demonstrates the §7 verifier punchline: a snapshot containing only
  R3's new FIB is flagged inconsistent ("wait for R1") instead of
  producing a wrong verdict;
* writes the HBG to fig5_hbg.dot for rendering with Graphviz.

Run:  python examples/feasibility_replay.py
"""

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig5 import Fig5Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter


def main():
    print("Converging to the §7 starting state (exit via R2)...")
    scenario = Fig5Scenario(seed=0)
    net = scenario.run_localpref_change()
    t0 = scenario.t_change

    print(f"\nApplied at t0: {scenario.change}")
    print("\nCaptured control-plane I/O timeline (cf. Fig. 5):")
    for event in net.collector:
        if event.timestamp >= t0:
            print(f"  +{event.timestamp - t0:9.4f}s  {event.describe()}")

    print("\nBuilding the happens-before graph from the logs...")
    engine = InferenceEngine()
    graph = engine.build_graph(net.collector.all_events())
    print(f"  {len(graph)} vertices, {graph.edge_count()} edges")

    fib = [
        e
        for e in net.collector.query(
            router="R1", kind=IOKind.FIB_UPDATE, prefix=P
        )
        if e.timestamp > t0
    ][0]
    provenance = ProvenanceTracer(graph).trace(fib.event_id)
    print("\nProvenance of R1's new FIB entry:")
    print("  " + provenance.describe().replace("\n", "\n  "))

    print("\n§7 punchline — the R3-only snapshot:")
    view = VerifierView(net.collector, lags={"R1": 5.0, "R2": 5.0})
    snapshotter = ConsistentSnapshotter(
        view, internal_routers=("R1", "R2", "R3")
    )
    r3_fib = [
        e
        for e in net.collector.query(
            router="R3", kind=IOKind.FIB_UPDATE, prefix=P
        )
        if e.timestamp > t0
    ]
    probe = max(e.timestamp for e in r3_fib) + 0.001
    _snapshot, report = snapshotter.snapshot(probe, prefix=P)
    print(f"  consistent: {report.consistent}")
    print(f"  verifier should wait for: {sorted(report.missing_routers)}")
    for reason in report.reasons[:2]:
        print(f"  reason: {reason}")

    with open("fig5_hbg.dot", "w") as handle:
        handle.write(graph.to_dot())
    print("\nWrote fig5_hbg.dot (render with: dot -Tpng fig5_hbg.dot)")


if __name__ == "__main__":
    main()
