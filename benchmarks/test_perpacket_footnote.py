"""Experiment C-PKT — §5 footnote 4: per-packet policy compliance.

Three verification verdicts on the same Fig. 1b convergence window:

* the naive snapshotter claims a forwarding loop (Fig. 1c);
* the consistent snapshotter never alarms (defers while stale);
* the per-packet analyzer proves the strongest statement of all:
  *no physically realisable packet* — injected at any instant, at any
  router — ever loops, because FIB updates propagate in the inverse
  direction of the packets (§5's collision argument).

The benchmark measures full journey enumeration over the window.
"""

import pytest

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import VerifierView
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.perpacket import PerPacketAnalyzer
from repro.verify.policy import LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

from _report import emit, table


def test_perpacket_footnote(benchmark):
    scenario = Fig1Scenario(seed=0)
    net = scenario.run_fig1b()
    window = (scenario.t_r2_route - 0.05, scenario.t_converged + 0.55)

    # Naive snapshot verdicts through the window (with R2 lag).
    view = VerifierView(net.collector, lags={"R2": 0.5})
    naive = NaiveSnapshotter(view)
    verifier = DataPlaneVerifier(net.topology, [LoopFreedomPolicy(prefixes=[P])])
    naive_alarms = 0
    t = window[0]
    while t <= window[1]:
        if not verifier.verify(naive.snapshot(t)).ok:
            naive_alarms += 1
        t += 0.01

    analyzer = PerPacketAnalyzer(net.collector.all_events(), net.topology, P)
    assert not analyzer.ever_loops(window)
    outcomes = analyzer.all_outcomes(window)

    journeys = {}
    total_journeys = 0
    for source in ("R1", "R2", "R3"):
        source_journeys = analyzer.distinct_journeys(source, window)
        journeys[source] = source_journeys
        total_journeys += len(source_journeys)
        assert all(j.outcome != "loop" for j in source_journeys)

    benchmark(
        lambda: [
            analyzer.distinct_journeys(s, window) for s in ("R1", "R2", "R3")
        ]
    )

    rows = []
    for source in ("R1", "R2", "R3"):
        for journey in journeys[source]:
            rows.append(
                (
                    source,
                    f"{journey.inject_time:.3f}s",
                    " -> ".join(journey.path),
                    journey.outcome,
                )
            )

    lines = [
        "all physically realisable packet journeys during the Fig. 1b "
        "convergence window:",
        "",
    ]
    lines += table(("source", "injected at", "journey", "outcome"), rows)
    lines += [
        "",
        f"distinct journeys enumerated: {total_journeys}; loops: 0",
        f"naive snapshot loop alarms over the same window: {naive_alarms}",
        f"outcome sets per source: "
        f"{ {s: sorted(o) for s, o in sorted(outcomes.items())} }",
        "",
        "paper shape: footnote 4 realised — the FIB-timeline "
        "enumeration proves per-packet loop freedom even while "
        "instantaneous reconstructions hallucinate a loop — OK",
    ]
    emit("C-PKT_perpacket", lines)
