"""Experiment F3 — Fig. 3: the integrated pipeline, end to end.

Runs the Fig. 2 misconfiguration against an armed
IntegratedControlPlane in all three modes and reports what each does:
MONITOR lets the violation through (and records it), BLOCK stops the
damage but leaves control/data divergence, REPAIR stops the damage
*and* reverts the root cause so the planes re-synchronise.  The
benchmark measures the REPAIR-mode episode.
"""

import time

import pytest

from repro import obs
from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.obs.export import missing_sections, registry_to_dict
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.verify.policy import LoopFreedomPolicy

from _report import emit, emit_json, table


def _episode(mode: PipelineMode, seed: int = 0):
    scenario = Fig2Scenario(seed=seed)
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net, [paper_policy(), LoopFreedomPolicy(prefixes=[P])], mode=mode
    ).arm()
    net.apply_config_change(bad_lp_change())
    net.run(90)
    lp = (
        net.configs.get("R2")
        .route_maps["r2-uplink-lp"]
        .clauses[0]
        .set_local_pref
    )
    return {
        "mode": mode.value,
        "violating_at_end": scenario.violates_policy(),
        "updates_checked": pipeline.updates_checked,
        "updates_blocked": pipeline.updates_blocked,
        "incidents": len(pipeline.incidents),
        "final_lp": lp,
        "root_cause_reverted": lp == 30,
        "exit_r3": scenario.exit_router_for("R3"),
    }


def test_fig3_pipeline_modes(benchmark):
    repair = benchmark(lambda: _episode(PipelineMode.REPAIR))
    monitor = _episode(PipelineMode.MONITOR, seed=1)
    block = _episode(PipelineMode.BLOCK, seed=2)

    assert monitor["violating_at_end"], "monitor mode lets damage happen"
    assert not block["violating_at_end"], "block mode protects the FIBs"
    assert not block["root_cause_reverted"], "block mode does not repair"
    assert not repair["violating_at_end"], "repair mode protects the FIBs"
    assert repair["root_cause_reverted"], "repair mode reverts the cause"
    assert repair["exit_r3"] == "R2", "repair restores the preferred exit"

    headers = (
        "mode",
        "violation at end",
        "updates blocked",
        "incidents",
        "LP after episode",
        "cause reverted",
    )
    rows = [
        (
            result["mode"],
            result["violating_at_end"],
            result["updates_blocked"],
            result["incidents"],
            result["final_lp"],
            result["root_cause_reverted"],
        )
        for result in (monitor, block, repair)
    ]
    lines = [
        "Fig. 3 pipeline driving the Fig. 2 misconfiguration "
        "(capture -> verify -> trace provenance -> block I/Os):",
        "",
    ]
    lines += table(headers, rows)
    lines += [
        "",
        "paper shape: 'capture errors before they are installed, "
        "automatically trace down the source of the error and roll-back "
        "the updates' — only REPAIR mode ends compliant AND in-sync — OK",
    ]
    emit("F3_fig3_pipeline", lines)


def test_fig3_pipeline_metrics_trajectory():
    """Instrumented REPAIR-mode episode → BENCH_pipeline.json.

    Runs the same episode with repro.obs enabled and persists the
    wall clock plus per-stage counters and latency histograms, so
    future PRs have a machine-readable perf trajectory to compare
    against.  Also asserts every pipeline stage actually recorded
    something — the guard against silently-dead instrumentation.
    """
    with obs.capturing() as (registry, tracer):
        wall_started = time.perf_counter()
        episode = _episode(PipelineMode.REPAIR, seed=3)
        wall_seconds = time.perf_counter() - wall_started
        document = registry_to_dict(registry, tracer)

    stages = ["capture", "inference", "snapshot", "verify", "repair", "sim"]
    assert missing_sections(document, stages) == []
    assert not episode["violating_at_end"]

    guard = document["sections"]["verify"]["histograms"][
        "verify.fib_write_latency_seconds"
    ]
    payload = {
        "experiment": "F3_fig3_pipeline",
        "mode": "repair",
        "wall_seconds": round(wall_seconds, 6),
        "per_stage_wall_seconds": {
            stage: {
                name: summary["sum"]
                for name, summary in document["sections"][stage][
                    "histograms"
                ].items()
                if name.endswith("_seconds")
            }
            for stage in stages
        },
        "fib_write_latency": guard,
        "episode": {
            "updates_checked": episode["updates_checked"],
            "updates_blocked": episode["updates_blocked"],
            "incidents": episode["incidents"],
            "root_cause_reverted": episode["root_cause_reverted"],
        },
        "metrics": document,
    }
    emit_json("pipeline", payload)
