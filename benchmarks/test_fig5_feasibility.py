"""Experiment F5 — Fig. 5 / §7: the feasibility study, replayed.

Reproduces the paper's emulated-Cisco experiment with the measured
delay constants (25 s config->soft-reconfiguration, ~4 ms FIB
install, ~4 ms to announce, ~8 ms propagation) and reports the same
timeline rows as Fig. 5, paper value vs measured value.  Also
re-checks both §7 punchlines: the root cause resolves to R1's
configuration change, and the R3-only snapshot is caught as
inconsistent.  The benchmark measures the full replay.
"""

import pytest

from repro.capture.io_events import IOKind, RouteAction
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig5 import Fig5Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter

from _report import emit, table


def _run(seed: int = 0) -> Fig5Scenario:
    scenario = Fig5Scenario(seed=seed)
    scenario.run_localpref_change()
    return scenario


def test_fig5_feasibility(benchmark):
    scenario = benchmark(_run)
    net = scenario.network
    t0 = scenario.t_change

    def first(router, kind, action=None):
        events = [
            e
            for e in net.collector.query(
                router=router, kind=kind, prefix=P, action=action
            )
            if e.timestamp > t0
        ]
        return min(e.timestamp for e in events)

    t_rib_r1 = first("R1", IOKind.RIB_UPDATE)
    t_fib_r1 = first("R1", IOKind.FIB_UPDATE)
    t_send_r1 = first("R1", IOKind.ROUTE_SEND)
    t_recv_r2 = first("R2", IOKind.ROUTE_RECEIVE)
    t_fib_r2 = first("R2", IOKind.FIB_UPDATE)
    t_fib_r3 = first("R3", IOKind.FIB_UPDATE)
    t_withdraw = first("R2", IOKind.ROUTE_SEND, action=RouteAction.WITHDRAW)

    rows = [
        ("config TTY0 -> soft reconfiguration", "~25 s",
         f"{t_rib_r1 - t0:.3f} s"),
        ("soft reconfig -> FIB: P direct", "~4 ms",
         f"{(t_fib_r1 - t_rib_r1) * 1000:.1f} ms"),
        ("FIB install -> Route announced", "~4 ms",
         f"{(t_send_r1 - t_fib_r1) * 1000:.1f} ms"),
        ("announce -> received at R2", "~8 ms",
         f"{(t_recv_r2 - t_send_r1) * 1000:.1f} ms"),
        ("received -> FIB: P via R1 (R2)", "<4 ms",
         f"{(t_fib_r2 - t_recv_r2) * 1000:.1f} ms"),
        ("then R2 withdraws its own route", "yes",
         f"at +{t_withdraw - t0:.3f} s"),
    ]
    # Shape assertions, not absolute-value ones.
    assert 20.0 <= t_rib_r1 - t0 <= 30.0
    assert 0 < (t_fib_r1 - t_rib_r1) <= 0.010
    assert 0 < (t_send_r1 - t_fib_r1) <= 0.010
    assert 0 < (t_recv_r2 - t_send_r1) <= 0.015
    assert t_withdraw > t_fib_r2

    # §7 punchline 1: root cause is R1's configuration change.
    graph = InferenceEngine().build_graph(net.collector.all_events())
    config = net.collector.query(router="R1", kind=IOKind.CONFIG_CHANGE)[0]
    fib_event = [
        e
        for e in net.collector.query(
            router="R1", kind=IOKind.FIB_UPDATE, prefix=P
        )
        if e.timestamp > t0
    ][0]
    provenance = ProvenanceTracer(graph).trace(fib_event.event_id)
    assert config.event_id in {e.event_id for e in provenance.root_causes}

    # §7 punchline 2: the R3-only snapshot is caught as inconsistent.
    view = VerifierView(net.collector, lags={"R1": 5.0, "R2": 5.0})
    snapshotter = ConsistentSnapshotter(
        view, internal_routers=("R1", "R2", "R3")
    )
    probe_at = t_fib_r3 + 0.001
    _snapshot, report = snapshotter.snapshot(probe_at, prefix=P)
    assert not report.consistent
    assert "R1" in report.missing_routers

    lines = ["Fig. 5 timeline (paper's measured values vs this replay):", ""]
    lines += table(("stage", "paper", "measured"), rows)
    lines += [
        "",
        f"root cause of R1's new FIB entry: "
        f"{provenance.root_causes[0].describe()}",
        f"R3-only snapshot at +{probe_at - t0:.3f}s: consistent="
        f"{report.consistent}, wait for {sorted(report.missing_routers)}",
        f"  reason: {report.reasons[0] if report.reasons else '-'}",
        "",
        "paper shape: 25s/4ms/8ms ladder, HBG points at the soft "
        "reconfiguration on R1, and the verifier 'can wait until it "
        "receives the up-to-date HBG from R1' — OK",
    ]
    emit("F5_fig5_feasibility", lines)
