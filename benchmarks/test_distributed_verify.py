"""Experiment C-DIST — §5's distributed-verification trade-off:

    "This approach adds time overhead, due to the delay in passing
    partial verification results between routers, but the approach
    avoids the potential for bottlenecks at a centralized verifier."

Grids of growing size, full FIBs from converged OSPF+BGP networks.
We compare centralized verification (all FIB entries shipped to one
node that does all the work) against hop-by-hop probe passing:
bottleneck work per node, messages, and completion latency.  The
benchmark measures the distributed run on the largest grid.
"""

import time

import pytest

from repro.hbr.distributed import DistributedHbg
from repro.hbr.inference import InferenceEngine
from repro.scenarios.generators import (
    build_random_network,
    build_scaled_network,
    churn_workload,
    external_prefixes,
)
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.distributed import (
    DistributedVerifier,
    centralized_equivalent_stats,
)

from _report import emit, table

SIZES = (4, 8, 16, 24)


def _converged(n, seed=0):
    net, specs = build_random_network(n, uplinks=2, seed=seed)
    net.start()
    prefixes = external_prefixes(4)
    for prefix in prefixes:
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
    net.run(60)
    return net, prefixes


def test_distributed_vs_central(benchmark):
    rows = []
    largest = None
    for n in SIZES:
        net, prefixes = _converged(n)
        snapshot = DataPlaneSnapshot.from_live_network(net)
        distributed = DistributedVerifier(net.topology, snapshot)
        outcomes, dist_stats = distributed.verify_prefixes(prefixes)
        central = centralized_equivalent_stats(net.topology, snapshot, prefixes)
        assert all(o.outcome == "delivered" for o in outcomes)
        assert dist_stats.bottleneck_work < central.bottleneck_work
        assert dist_stats.latency > central.latency
        rows.append(
            (
                n,
                central.bottleneck_work,
                dist_stats.bottleneck_work,
                f"{central.bottleneck_work / dist_stats.bottleneck_work:.1f}x",
                central.messages,
                dist_stats.messages,
                f"{dist_stats.latency * 1000:.0f} ms",
            )
        )
        largest = (net, prefixes, snapshot)

    net, prefixes, snapshot = largest
    verifier = DistributedVerifier(net.topology, snapshot)
    benchmark(lambda: verifier.verify_prefixes(prefixes))

    lines = [
        "centralized vs distributed data-plane verification "
        "(4 prefixes, 2 uplinks, random connected graphs):",
        "",
    ]
    lines += table(
        (
            "routers",
            "central bottleneck",
            "dist bottleneck",
            "relief",
            "central msgs",
            "dist msgs",
            "dist latency",
        ),
        rows,
    )
    lines += [
        "",
        "paper shape: distribution shrinks the per-node bottleneck as "
        "the network grows, at the cost of hop-by-hop latency — OK",
    ]
    emit("C-DIST_distributed_verify", lines)


#: Distributed HBG *construction* at collector-hostile sizes — the
#: C-SCALE family stops at n=128; these record the n=256/512 points.
HBG_SIZES = (256, 512)


def test_distributed_hbg_build_at_scale():
    """Distributed HBG construction on 100s of routers (PR 10).

    Route-reflector + static-underlay networks (O(n) events), built
    per router from boundary summaries with a fork pool; the merge is
    asserted byte-identical to the central indexed build at every
    size, and the summary traffic strictly below central collection.
    """
    rows = []
    for n in HBG_SIZES:
        net, specs = build_scaled_network(n, seed=0)
        net.start()
        churn_workload(
            net, specs, external_prefixes(4), events=10, start=2.0, seed=0
        )
        net.run(60)
        events = net.collector.all_events()

        dist = DistributedHbg(InferenceEngine())
        dist.ingest_all(events)
        t0 = time.perf_counter()
        dist.build_all(workers=4)
        t_dist = time.perf_counter() - t0
        stats = dist.last_build

        t0 = time.perf_counter()
        central = InferenceEngine().build_graph(events)
        t_central = time.perf_counter() - t0
        assert dist.merged_graph().to_records() == central.to_records(), (
            f"distributed merge not byte-identical to central at n={n}"
        )
        assert stats.boundary_bytes < stats.central_bytes

        rows.append(
            (
                n,
                len(events),
                stats.edges,
                f"{t_dist * 1000:.0f} ms",
                f"{t_central * 1000:.0f} ms",
                stats.boundary_messages,
                f"{stats.boundary_bytes / 1024:,.0f} KiB",
                f"{stats.central_bytes / 1024:,.0f} KiB",
                f"{stats.central_bytes / stats.boundary_bytes:.1f}x",
            )
        )

    lines = [
        "distributed HBG construction at collector-hostile sizes "
        "(boundary-summary exchange, 4 workers, byte-identical merge "
        "asserted against the central indexed build):",
        "",
    ]
    lines += table(
        (
            "routers",
            "events",
            "HBG edges",
            "dist build",
            "central build",
            "boundary msgs",
            "boundary bytes",
            "central bytes",
            "savings",
        ),
        rows,
    )
    emit("C-DIST_distributed_hbg_build", lines)
