"""Experiment C-DIST — §5's distributed-verification trade-off:

    "This approach adds time overhead, due to the delay in passing
    partial verification results between routers, but the approach
    avoids the potential for bottlenecks at a centralized verifier."

Grids of growing size, full FIBs from converged OSPF+BGP networks.
We compare centralized verification (all FIB entries shipped to one
node that does all the work) against hop-by-hop probe passing:
bottleneck work per node, messages, and completion latency.  The
benchmark measures the distributed run on the largest grid.
"""

import pytest

from repro.scenarios.generators import (
    build_random_network,
    external_prefixes,
)
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.distributed import (
    DistributedVerifier,
    centralized_equivalent_stats,
)

from _report import emit, table

SIZES = (4, 8, 16, 24)


def _converged(n, seed=0):
    net, specs = build_random_network(n, uplinks=2, seed=seed)
    net.start()
    prefixes = external_prefixes(4)
    for prefix in prefixes:
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
    net.run(60)
    return net, prefixes


def test_distributed_vs_central(benchmark):
    rows = []
    largest = None
    for n in SIZES:
        net, prefixes = _converged(n)
        snapshot = DataPlaneSnapshot.from_live_network(net)
        distributed = DistributedVerifier(net.topology, snapshot)
        outcomes, dist_stats = distributed.verify_prefixes(prefixes)
        central = centralized_equivalent_stats(net.topology, snapshot, prefixes)
        assert all(o.outcome == "delivered" for o in outcomes)
        assert dist_stats.bottleneck_work < central.bottleneck_work
        assert dist_stats.latency > central.latency
        rows.append(
            (
                n,
                central.bottleneck_work,
                dist_stats.bottleneck_work,
                f"{central.bottleneck_work / dist_stats.bottleneck_work:.1f}x",
                central.messages,
                dist_stats.messages,
                f"{dist_stats.latency * 1000:.0f} ms",
            )
        )
        largest = (net, prefixes, snapshot)

    net, prefixes, snapshot = largest
    verifier = DistributedVerifier(net.topology, snapshot)
    benchmark(lambda: verifier.verify_prefixes(prefixes))

    lines = [
        "centralized vs distributed data-plane verification "
        "(4 prefixes, 2 uplinks, random connected graphs):",
        "",
    ]
    lines += table(
        (
            "routers",
            "central bottleneck",
            "dist bottleneck",
            "relief",
            "central msgs",
            "dist msgs",
            "dist latency",
        ),
        rows,
    )
    lines += [
        "",
        "paper shape: distribution shrinks the per-node bottleneck as "
        "the network grows, at the cost of hop-by-hop latency — OK",
    ]
    emit("C-DIST_distributed_verify", lines)
