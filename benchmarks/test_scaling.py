"""Experiment C-SCALE — implicit claim: the machinery must scale.

Measures, as the network grows: capture volume, HBG construction
time (indexed default vs the pre-index ``legacy_scan`` reference),
snapshot consistency-check time, and provenance-trace time.  The
paper's premise (§4–§5) is that all of this runs *online* in the
control plane, so throughput columns (events/sec, edges/sec) make
the budget explicit.

Two resource columns join the gate (PR 6): ``ledger_peak_bytes`` —
the resource ledger's high-watermark over a *streaming* build (the
batch path's index dies with the build; the streaming one is what an
always-on daemon would hold resident) — and
``profiler_samples_per_sec``, the deterministic sampling profiler's
throughput over one profiled build.  Bytes keys regression-gate like
seconds keys in ``repro bench diff`` (with their own noise floor).

The legacy column is only measured up to ``LEGACY_MAX`` routers —
beyond that the O(N)-window rescans take tens of seconds per build
and demonstrate nothing new; the differential equality against the
indexed path is still asserted wherever both run (and fuzzed further
by the ``hbg-indexed-equivalence`` testkit oracle).
"""

import time

from repro import obs
from repro.capture.io_events import IOKind
from repro.hbr.inference import (
    InferenceConfig,
    InferenceEngine,
    StreamingInference,
)
from repro.hbr.distributed import DistributedHbg
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.generators import (
    build_random_network,
    build_scaled_network,
    churn_workload,
    external_prefixes,
)
from repro.obs.continuous import WatermarkTracker
from repro.obs.ledger import NullVerdictLedger, VerdictLedger
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.verify.incremental import IncrementalVerifier, incremental_engine

from _report import emit, emit_json, table

SIZES = (4, 8, 16, 32, 48)

#: Largest size the legacy path is timed at (see module docstring).
LEGACY_MAX = 16

#: The distributed construction family (PR 10): route-reflector +
#: static-underlay networks whose event count scales O(n), built per
#: router from boundary summaries (repro.hbr.distributed).
DIST_SIZES = (8, 32, 128)
DIST_WORKERS = 4


def _capture(n, seed=0):
    net, specs = build_random_network(n, uplinks=2, seed=seed)
    net.start()
    churn_workload(
        net, specs, external_prefixes(4), events=10, start=2.0, seed=seed
    )
    net.run(60)
    return net


def _capture_scaled(n, seed=0):
    net, specs = build_scaled_network(n, seed=seed)
    net.start()
    churn_workload(
        net, specs, external_prefixes(4), events=10, start=2.0, seed=seed
    )
    net.run(60)
    return net


#: Refresh the ledger every this many streamed events when hunting
#: the peak (every event would measure the measuring).
_LEDGER_REFRESH_EVERY = 2048


def _streaming_peak_bytes(events):
    """Peak ledger bytes over a streaming build of ``events``."""
    with obs.accounting() as ledger:
        streaming = StreamingInference(InferenceEngine())
        for count, event in enumerate(events, start=1):
            streaming.observe(event)
            if count % _LEDGER_REFRESH_EVERY == 0:
                ledger.refresh()
        ledger.refresh()
        return ledger.peak_total_bytes()


def _profiled_build(events):
    """One profiled indexed build; returns samples/sec."""
    with obs.profiling(stride=97, weights="wall") as profiler:
        InferenceEngine().build_graph(events)
        return profiler.samples_per_sec()


class _TrippingVerdicts(NullVerdictLedger):
    """Zero-overhead guard: the plain feeds timed below must never
    reach the verdict ledger while it is disabled."""

    def record(self, *args, **kwargs):
        raise AssertionError(
            "verdict ledger invoked while verdicts.enabled is False"
        )


def _watermark_overhead_per_event(events, view):
    """Per-event cost of watermark tracking on a streaming feed.

    Times the identical arrival-ordered feed twice — bare, then with a
    WatermarkTracker subscribed — and charges the difference to the
    tracker.  The bare feed runs under a tripping verdict ledger, so
    the baseline provably carries no continuous-telemetry work."""
    ordered = sorted(
        events, key=lambda e: (view.arrival_time(e), e.event_id)
    )

    previous = obs._verdicts
    obs._verdicts = _TrippingVerdicts()
    try:
        plain = StreamingInference(InferenceEngine())
        t0 = time.perf_counter()
        for event in ordered:
            plain.observe(event)
        t_plain = time.perf_counter() - t0
    finally:
        obs._verdicts = previous

    tracked = StreamingInference(InferenceEngine())
    tracker = WatermarkTracker(view=view).attach(tracked)
    t0 = time.perf_counter()
    for event in ordered:
        tracked.observe(event)
    t_tracked = time.perf_counter() - t0
    assert tracker.events_seen == len(ordered)
    return max(0.0, t_tracked - t_plain) / len(ordered)


def _ledger_append_per_event(count, path):
    """Mean seconds to append (and periodically flush) one verdict."""
    ledger = VerdictLedger(path=path, flush_every=256)
    t0 = time.perf_counter()
    for i in range(count):
        ledger.record(
            kind="incremental",
            at=float(i),
            ok=bool(i % 7),
            prefix="203.0.113.0/24",
            router="R1",
            event_id=i,
            refs=(i,),
        )
    ledger.flush()
    return (time.perf_counter() - t0) / count


def _canonical_edges(graph):
    return sorted(
        (
            e.cause,
            e.effect,
            e.evidence.technique,
            e.evidence.rule,
            e.evidence.confidence,
        )
        for e in graph.edges()
    )


def test_scaling(benchmark, tmp_path):
    rows = []
    trajectory = {"experiment": "C-SCALE_scaling", "sizes": {}}
    largest_events = None
    for n in SIZES:
        net = _capture(n)
        events = net.collector.all_events()
        engine = InferenceEngine()

        t0 = time.perf_counter()
        graph = engine.build_graph(events)
        t_build = time.perf_counter() - t0

        if n <= LEGACY_MAX:
            legacy_engine = InferenceEngine(
                config=InferenceConfig(legacy_scan=True)
            )
            t0 = time.perf_counter()
            legacy_graph = legacy_engine.build_graph(events)
            t_legacy = time.perf_counter() - t0
            assert _canonical_edges(legacy_graph) == _canonical_edges(
                graph
            ), f"indexed path diverges from legacy scan at n={n}"
            legacy_cell = f"{t_legacy * 1000:.1f} ms"
            speedup_cell = f"{t_legacy / t_build:.1f}x"
        else:
            t_legacy = None
            legacy_cell = "-"
            speedup_cell = "-"

        snapshotter = ConsistentSnapshotter(
            VerifierView(net.collector),
            internal_routers=net.topology.internal_routers(),
            engine=engine,
        )
        t0 = time.perf_counter()
        _snapshot, report = snapshotter.snapshot(net.sim.now)
        t_check = time.perf_counter() - t0
        assert report.consistent

        # Incremental §5 verification (PR 8): one full-relink streaming
        # feed with an attached IncrementalVerifier; the column is the
        # mean per-FIB-delta verify cost, which should stay near-flat
        # as the network grows (each delta re-checks one prefix's
        # closure against persistent memos, not the whole snapshot).
        inc_engine = incremental_engine()
        inc_streaming = inc_engine.streaming()
        inc_view = VerifierView(net.collector)
        incremental = IncrementalVerifier(
            net.topology.internal_routers(),
            view=inc_view,
            engine=inc_engine,
        ).attach(inc_streaming)
        for event in sorted(
            events, key=lambda e: (inc_view.arrival_time(e), e.event_id)
        ):
            inc_streaming.observe(event)
        assert incremental.deltas_applied > 0
        t_inc_update = (
            incremental.verify_seconds_total / incremental.deltas_applied
        )

        fib_events = net.collector.events_of_kind(IOKind.FIB_UPDATE)
        target = max(fib_events, key=lambda e: e.timestamp)
        tracer = ProvenanceTracer(graph)
        t0 = time.perf_counter()
        tracer.trace(target.event_id)
        t_trace = time.perf_counter() - t0

        peak_bytes = _streaming_peak_bytes(events)
        samples_per_sec = _profiled_build(events)
        t_watermark = _watermark_overhead_per_event(events, inc_view)
        t_append = _ledger_append_per_event(
            len(events), str(tmp_path / f"verdicts-n{n:02d}.jsonl")
        )

        events_per_sec = len(events) / t_build
        edges_per_sec = graph.edge_count() / t_build
        rows.append(
            (
                n,
                len(events),
                graph.edge_count(),
                f"{t_build * 1000:.1f} ms",
                legacy_cell,
                speedup_cell,
                f"{events_per_sec:,.0f}",
                f"{edges_per_sec:,.0f}",
                f"{t_check * 1000:.1f} ms",
                f"{t_inc_update * 1e6:.0f} µs",
                f"{t_trace * 1000:.2f} ms",
                f"{peak_bytes / 1024:,.0f} KiB",
                f"{samples_per_sec:,.0f}",
                f"{t_watermark * 1e6:.2f} µs",
                f"{t_append * 1e6:.2f} µs",
            )
        )
        size_stats = {
            "events": len(events),
            "hbg_edges": graph.edge_count(),
            "build_indexed_seconds": round(t_build, 6),
            "consistency_check_seconds": round(t_check, 6),
            "incremental_verify_per_update_seconds": round(t_inc_update, 9),
            "provenance_trace_seconds": round(t_trace, 6),
            "events_per_sec": round(events_per_sec, 1),
            "edges_per_sec": round(edges_per_sec, 1),
            "ledger_peak_bytes": peak_bytes,
            "profiler_samples_per_sec": round(samples_per_sec, 1),
            "watermark_overhead_per_event_seconds": round(t_watermark, 9),
            "ledger_append_per_event_seconds": round(t_append, 9),
        }
        if t_legacy is not None:
            size_stats["build_legacy_seconds"] = round(t_legacy, 6)
        trajectory["sizes"][f"n{n:02d}"] = size_stats
        largest_events = events

    # -- distributed construction family (PR 10) ------------------------
    # Per-router subgraphs + boundary-summary exchange on O(n)-event
    # scaled networks: per-router throughput must hold roughly flat to
    # n=128 (the full-mesh family above decays ~5x by n=48), the merge
    # must be byte-identical to the central indexed build, and the
    # summaries must cost strictly less than central collection.
    dist_rows = []
    per_router_eps = {}
    for n in DIST_SIZES:
        net = _capture_scaled(n)
        events = net.collector.all_events()

        dist = DistributedHbg(InferenceEngine())
        dist.ingest_all(events)
        # Serial per-router inference cost: exchange once, then time
        # each subgraph's indexed inference over its own events.
        # Best-of-3 per router: single shots are dominated by lazy
        # sorting, allocator warmup, and GC pauses charged to whoever
        # happened to be running; the steady-state cost is the claim.
        dist.exchange_summaries()
        rep_totals = []
        for _rep in range(3):
            total = 0.0
            for name in dist.routers():
                t0 = time.perf_counter()
                dist.subgraphs[name].infer_records()
                total += time.perf_counter() - t0
            rep_totals.append(total)
        per_router = len(events) / min(rep_totals)

        t0 = time.perf_counter()
        dist.build_all(workers=DIST_WORKERS)
        t_dist_build = time.perf_counter() - t0
        stats = dist.last_build

        t0 = time.perf_counter()
        central = InferenceEngine().build_graph(events)
        t_central = time.perf_counter() - t0
        assert dist.merged_graph().to_records() == central.to_records(), (
            f"distributed merge not byte-identical to central at n={n}"
        )
        assert stats.boundary_bytes < stats.central_bytes, (
            f"boundary summaries cost more than central collection at n={n}"
        )

        per_router_eps[n] = per_router
        dist_rows.append(
            (
                n,
                len(events),
                stats.edges,
                f"{t_dist_build * 1000:.1f} ms",
                f"{t_central * 1000:.1f} ms",
                f"{per_router:,.0f}",
                stats.boundary_messages,
                f"{stats.boundary_bytes / 1024:,.0f} KiB",
                f"{stats.central_bytes / 1024:,.0f} KiB",
                f"{stats.central_bytes / stats.boundary_bytes:.1f}x",
            )
        )
        trajectory["sizes"].setdefault(f"n{n:03d}_distributed", {}).update(
            {
                "events": len(events),
                "hbg_edges": stats.edges,
                "distributed_build_seconds": round(t_dist_build, 6),
                "central_build_seconds": round(t_central, 6),
                "per_router_events_per_sec": round(per_router, 1),
                "boundary_messages": stats.boundary_messages,
                "boundary_bytes": stats.boundary_bytes,
                "central_collector_bytes": stats.central_bytes,
            }
        )

    # Acceptance: per-router throughput holds to n=128 — at least half
    # the n=8 figure (vs the ~5x decay of the central full-mesh path).
    floor = 0.5 * per_router_eps[DIST_SIZES[0]]
    assert per_router_eps[DIST_SIZES[-1]] >= floor, (
        f"per-router events/sec decayed past 0.5x: "
        f"{per_router_eps[DIST_SIZES[-1]]:.0f} vs floor {floor:.0f}"
    )

    benchmark(lambda: InferenceEngine().build_graph(largest_events))

    lines = [
        "cost of the paper's machinery vs network size "
        "(10 churn events, 2 uplinks, 4 prefixes):",
        "",
    ]
    lines += table(
        (
            "routers",
            "events",
            "HBG edges",
            "HBG build",
            "legacy scan",
            "speedup",
            "events/sec",
            "edges/sec",
            "consistency check",
            "incr/update",
            "provenance trace",
            "peak ledger",
            "samples/sec",
            "wm/event",
            "verdict/event",
        ),
        rows,
    )
    lines += [
        "",
        "shape: the indexed build (repro.hbr.index) holds events/sec "
        "roughly flat as the network grows, where the legacy per-rule "
        "window rescan degraded quadratically (timed up to "
        f"{LEGACY_MAX} routers; identical edge sets asserted wherever "
        "both run).  The consistency check rides the same indexed "
        "build plus memoized §5 closure walks; incr/update is the "
        "incremental verifier's mean per-FIB-delta re-verify cost "
        "(atom refinement + one prefix's §5 closure against persistent "
        "memos), which stays near-flat because a delta's work is "
        "scoped to its own prefix, not the snapshot; provenance stays "
        "sub-millisecond since it touches only one episode's ancestry.  "
        "peak ledger is the resource ledger's high-watermark over a "
        "streaming build (graph + incremental index resident "
        "together); samples/sec is the deterministic profiler's "
        "throughput over one profiled build.  wm/event is the extra "
        "per-event cost of watermark tracking on the streaming feed "
        "(the bare baseline runs under a tripping verdict ledger, "
        "proving the disabled path does zero telemetry work); "
        "verdict/event is the mean cost of one ledger append with "
        "periodic atomic flushes.",
        "",
        "distributed construction (route-reflector + static-underlay "
        f"networks, boundary-summary exchange, {DIST_WORKERS} workers):",
        "",
    ]
    lines += table(
        (
            "routers",
            "events",
            "HBG edges",
            "dist build",
            "central build",
            "per-router ev/s",
            "boundary msgs",
            "boundary bytes",
            "central bytes",
            "savings",
        ),
        dist_rows,
    )
    lines += [
        "",
        "shape: per-router events/sec holds roughly flat as the "
        "network grows (each router's indexed inference touches only "
        "its own events plus its neighbors' boundary summaries), the "
        "merged graph is byte-identical to the central indexed build "
        "at every size, and boundary summaries ship a small fraction "
        "of the bytes a central collector would ingest.",
    ]
    emit("C-SCALE_scaling", lines)
    emit_json("scaling", trajectory)
