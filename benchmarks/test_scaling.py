"""Experiment C-SCALE — implicit claim: the machinery must scale.

Measures, as the network grows: capture volume, HBG construction
time, snapshot consistency-check time, and provenance-trace time.
The expectation (and the paper's implicit bet) is roughly linear
growth in the event volume, which itself grows with routers x churn.
The benchmark measures HBG construction at the largest size.
"""

import time

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter

from _report import emit, table

SIZES = (4, 8, 12, 16)


def _capture(n, seed=0):
    net, specs = build_random_network(n, uplinks=2, seed=seed)
    net.start()
    churn_workload(
        net, specs, external_prefixes(4), events=10, start=2.0, seed=seed
    )
    net.run(60)
    return net


def test_scaling(benchmark):
    rows = []
    largest_events = None
    for n in SIZES:
        net = _capture(n)
        events = net.collector.all_events()
        engine = InferenceEngine()

        t0 = time.perf_counter()
        graph = engine.build_graph(events)
        t_build = time.perf_counter() - t0

        snapshotter = ConsistentSnapshotter(
            VerifierView(net.collector),
            internal_routers=net.topology.internal_routers(),
            engine=engine,
        )
        t0 = time.perf_counter()
        _snapshot, report = snapshotter.snapshot(net.sim.now)
        t_check = time.perf_counter() - t0
        assert report.consistent

        fib_events = net.collector.events_of_kind(IOKind.FIB_UPDATE)
        target = max(fib_events, key=lambda e: e.timestamp)
        tracer = ProvenanceTracer(graph)
        t0 = time.perf_counter()
        tracer.trace(target.event_id)
        t_trace = time.perf_counter() - t0

        rows.append(
            (
                n,
                len(events),
                graph.edge_count(),
                f"{t_build * 1000:.1f} ms",
                f"{t_check * 1000:.1f} ms",
                f"{t_trace * 1000:.2f} ms",
            )
        )
        largest_events = events

    benchmark(lambda: InferenceEngine().build_graph(largest_events))

    lines = [
        "cost of the paper's machinery vs network size "
        "(10 churn events, 2 uplinks, 4 prefixes):",
        "",
    ]
    lines += table(
        (
            "routers",
            "events",
            "HBG edges",
            "HBG build",
            "consistency check",
            "provenance trace",
        ),
        rows,
    )
    lines += [
        "",
        "shape: HBG build and consistency check grow super-linearly in "
        "event volume (each event scans a time-window of candidates, "
        "and dense iBGP meshes make windows busier); provenance stays "
        "sub-millisecond since it touches only one episode's ancestry.",
    ]
    emit("C-SCALE_scaling", lines)
