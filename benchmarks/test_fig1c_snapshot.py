"""Experiment F1c — Fig. 1c: the phantom loop under naive snapshotting.

While the Fig. 1b update propagates, a verifier whose view of R2's
FIB lags sees R1/R3's new entries combined with R2's stale one and
reports a loop that never exists in the real data plane.  The
HBG-consistent snapshotter instead declares the cut inconsistent and
names R2 as the router to wait for.

The report sweeps every probe instant through the convergence window
and counts naive false alarms vs consistent-snapshot alarms; the
benchmark measures the consistency check itself.
"""

import pytest

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import DataPlaneSnapshot, VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.policy import LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

from _report import emit, table

LAG_R2 = 0.5
PROBE_STEP = 0.005


@pytest.fixture(scope="module")
def converged():
    scenario = Fig1Scenario(seed=0)
    scenario.run_fig1b()
    return scenario


def _sweep(scenario):
    net = scenario.network
    view = VerifierView(net.collector, lags={"R2": LAG_R2})
    naive = NaiveSnapshotter(view)
    snapshotter = ConsistentSnapshotter(
        view, internal_routers=net.topology.internal_routers()
    )
    verifier = DataPlaneVerifier(net.topology, [LoopFreedomPolicy(prefixes=[P])])

    naive_alarms = 0
    consistent_alarms = 0
    deferred = 0
    probes = 0
    missing_named = set()
    t = scenario.t_r2_route
    while t <= scenario.t_converged + LAG_R2:
        probes += 1
        if not verifier.verify(naive.snapshot(t)).ok:
            naive_alarms += 1
        snapshot, report = snapshotter.snapshot(t, prefix=P)
        if report.consistent:
            if not verifier.verify(snapshot).ok:
                consistent_alarms += 1
        else:
            deferred += 1
            missing_named |= report.missing_routers
        t += PROBE_STEP
    return probes, naive_alarms, consistent_alarms, deferred, missing_named


def test_fig1c_phantom_loop(benchmark, converged):
    probes, naive_alarms, consistent_alarms, deferred, missing = _sweep(
        converged
    )
    assert naive_alarms > 0, "the Fig. 1c phantom loop must appear"
    assert consistent_alarms == 0, "HBG-consistent snapshots never alarm"
    assert "R2" in missing, "§7: the verifier must know whom to wait for"

    net = converged.network
    view = VerifierView(net.collector, lags={"R2": LAG_R2})
    snapshotter = ConsistentSnapshotter(
        view, internal_routers=net.topology.internal_routers()
    )
    mid = converged.t_r2_route + (LAG_R2 / 2)
    benchmark(lambda: snapshotter.snapshot(mid, prefix=P))

    rows = [
        ("probe instants", probes, probes),
        ("loop alarms raised", naive_alarms, consistent_alarms),
        ("snapshots deferred (wait for logs)", 0, deferred),
    ]
    lines = [
        f"R2 log delivery lag: {LAG_R2 * 1000:.0f} ms; probing every "
        f"{PROBE_STEP * 1000:.0f} ms through the convergence window",
        "",
    ]
    lines += table(("metric", "naive snapshot", "HBG-consistent"), rows)
    lines += [
        "",
        f"routers named as missing while inconsistent: {sorted(missing)}",
        "paper shape: naive sees loop between R1 and R2 that 'does not "
        "appear in practice'; HBG defers instead of false-alarming — OK",
    ]
    emit("F1c_fig1c_snapshot", lines)
