"""Experiment C-WHATIF — §8's CrystalNet-style what-if extension:

    "One approach in this direction is to leverage ideas from
    CrystalNet [27] that runs an emulated copy of the network and can
    inject faults."

Checks the two properties a what-if fork must have to be useful:
**fidelity** (the fork re-converges to the live network's forwarding
state) and **prognostic value** (verdicts on hypothetical config
changes / link failures match what actually happens when the same
events are later applied to the live network).  The benchmark
measures one full fork + injection + verdict cycle.
"""

import pytest

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.verifier import DataPlaneVerifier
from repro.whatif.engine import WhatIfEngine, config_change, link_failure

from _report import emit, table


def test_whatif_forking(benchmark):
    rows = []
    for seed in (0, 1, 2):
        scenario = Fig1Scenario(seed=seed)
        live = scenario.run_fig1b()
        engine = WhatIfEngine(live, [paper_policy()], settle=60.0)

        # Fidelity: empty injection, fork must match live.
        null_result = engine.ask([], seed=seed + 100)
        assert null_result.fork_matches_live
        assert null_result.deltas == []

        # Question 1: is the Fig. 2a change safe?  (prediction: no)
        change = bad_lp_change()
        predicted_bad = engine.ask([config_change(change)], seed=seed + 200)
        # Question 2: does losing R2's uplink violate?  (prediction: no,
        # the policy falls back to R1.)
        predicted_failover = engine.survives_link_failure(
            "R2", "Ext2", seed=seed + 300
        )

        # Ground truth: apply the same events to the live network.
        fresh = Fig1Scenario(seed=seed)
        truth_net = fresh.run_fig1b()
        truth_net.apply_config_change(bad_lp_change())
        truth_net.run(60)
        verifier = DataPlaneVerifier(truth_net.topology, [paper_policy()])
        actual_bad = not verifier.verify(
            DataPlaneSnapshot.from_live_network(truth_net)
        ).ok

        fresh2 = Fig1Scenario(seed=seed)
        truth_net2 = fresh2.run_fig1b()
        truth_net2.fail_link("R2", "Ext2")
        truth_net2.run(30)
        verifier2 = DataPlaneVerifier(truth_net2.topology, [paper_policy()])
        actual_failover_ok = verifier2.verify(
            DataPlaneSnapshot.from_live_network(truth_net2)
        ).ok

        assert (not predicted_bad.safe) == actual_bad
        assert predicted_failover.safe == actual_failover_ok
        rows.append(
            (
                seed,
                "violates" if not predicted_bad.safe else "safe",
                "violates" if actual_bad else "safe",
                "safe" if predicted_failover.safe else "violates",
                "safe" if actual_failover_ok else "violates",
            )
        )

    scenario = Fig1Scenario(seed=9)
    live = scenario.run_fig1b()
    engine = WhatIfEngine(live, [paper_policy()], settle=60.0)
    benchmark.pedantic(
        lambda: engine.ask([config_change(bad_lp_change())], seed=7),
        rounds=3,
        iterations=1,
    )

    lines = [
        "what-if fork verdicts vs ground truth (events later applied "
        "to the live network):",
        "",
    ]
    lines += table(
        (
            "seed",
            "LP=10 predicted",
            "LP=10 actual",
            "uplink-loss predicted",
            "uplink-loss actual",
        ),
        rows,
    )
    lines += [
        "",
        "fidelity: empty-injection forks matched the live forwarding "
        "state exactly in every run",
        "paper shape: an emulated copy of the network answers what-if "
        "questions the HBG alone cannot — OK",
    ]
    emit("C-WHATIF_forking", lines)
