"""Experiment F2 — Fig. 2a/2b: the misconfiguration and the blocking
disaster.

Fig. 2a: setting R2's uplink local-pref to 10 flips the whole network
onto R1's uplink, violating the preferred-exit policy.  Fig. 2b (as
narrated in §2): if a data-plane-only verifier *blocks* the FIB
updates instead, the control and data planes diverge, and when R2's
uplink subsequently fails the frozen FIBs black-hole all traffic at
R2.  Root-cause rollback handles the same failure cleanly.
"""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.blocking import BlockingRepair
from repro.repair.provenance import ProvenanceTracer
from repro.repair.rollback import RepairEngine
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.verify.verifier import DataPlaneVerifier

from _report import emit, table


def _run_fig2a(seed: int = 0) -> Fig2Scenario:
    scenario = Fig2Scenario(seed=seed)
    scenario.run_fig2a()
    return scenario


def test_fig2_violation_and_blocking_disaster(benchmark):
    scenario = benchmark(_run_fig2a)
    net = scenario.network
    assert scenario.violates_policy(), "Fig. 2a: the policy is violated"

    rows_2a = []
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        rows_2a.append((router, "->".join(path), outcome))

    # --- blocking baseline: freeze, then fail the uplink (Fig. 2b) ---
    blocked = Fig2Scenario(seed=1)
    bnet = blocked.run_baseline()
    blocker = BlockingRepair(bnet, prefixes={P})
    blocker.activate()
    bnet.apply_config_change(bad_lp_change())
    bnet.run(60)
    divergence = blocker.divergence()
    bnet.fail_link("R2", "Ext2")
    bnet.run(10)
    rows_blocking = []
    blackholes = 0
    for router in ("R1", "R3"):
        path, outcome = bnet.trace_path(router, P.first_address())
        rows_blocking.append((router, "->".join(path), outcome))
        if outcome == "blackhole":
            blackholes += 1
    assert blackholes == 2, "Fig. 2b: frozen FIBs black-hole at R2"

    # --- rollback alternative on the same storyline ---
    repaired = Fig2Scenario(seed=2)
    rnet = repaired.run_fig2a()
    graph = InferenceEngine().build_graph(rnet.collector.all_events())
    config = rnet.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
    fibs = [
        e
        for e in rnet.collector.query(kind=IOKind.FIB_UPDATE, prefix=P)
        if e.timestamp > config.timestamp
    ]
    provenance = ProvenanceTracer(graph).trace_many([e.event_id for e in fibs])
    verifier = DataPlaneVerifier(rnet.topology, [paper_policy()])
    report = RepairEngine(rnet, verifier).repair(provenance, settle=60.0)
    assert report.repaired
    rnet.fail_link("R2", "Ext2")
    rnet.run(10)
    rows_rollback = []
    for router in ("R1", "R3"):
        path, outcome = rnet.trace_path(router, P.first_address())
        rows_rollback.append((router, "->".join(path), outcome))
        assert outcome == "delivered" and path[-1] == "Ext1"

    lines = ["Fig. 2a — after LP=10 misconfiguration on R2:"]
    lines += table(("router", "path to P", "outcome"), rows_2a)
    lines += [
        "",
        f"policy violated (R2 uplink up, traffic exits via R1): "
        f"{scenario.violates_policy()}",
        "",
        "Fig. 2b — blocking baseline, then R2 uplink fails:",
        f"control/data divergence entries while frozen: {len(divergence)}",
    ]
    lines += table(("router", "path to P", "outcome"), rows_blocking)
    lines += [
        "",
        "Same uplink failure after root-cause rollback instead:",
    ]
    lines += table(("router", "path to P", "outcome"), rows_rollback)
    lines += [
        "",
        "paper shape: blocking black-holes traffic at R2; rollback "
        "fails over cleanly to R1's uplink — OK",
    ]
    emit("F2_fig2_violation", lines)
