"""Experiment F4 — Fig. 4: the happens-before graph of the Fig. 2
scenario.

Builds the HBG from the captured (observable) I/O stream with rule
inference and checks it has the exact shape the paper draws: the
configuration change on R2 is the single actionable leaf; the chain
runs config -> R2 RIB update -> R2 iBGP sends -> R1/R3 receives ->
their RIB updates -> their FIB installs; and R1's "install P -> Ext
in FIB" (the 'fault' vertex) traces back to that leaf.  The benchmark
measures HBG construction.
"""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine, score_inference
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import P

from _report import emit, table


@pytest.fixture(scope="module")
def fig2():
    scenario = Fig2Scenario(seed=0)
    scenario.run_fig2a()
    return scenario


def test_fig4_hbg(benchmark, fig2):
    net = fig2.network
    events = net.collector.all_events()
    engine = InferenceEngine()
    graph = benchmark(lambda: engine.build_graph(events))

    config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
    # The 'fault' vertex of Fig. 4: R1 installs P -> Ext in its FIB.
    r1_fibs = [
        e
        for e in net.collector.query(
            router="R1", kind=IOKind.FIB_UPDATE, prefix=P
        )
        if e.timestamp > config.timestamp
    ]
    fault = max(r1_fibs, key=lambda e: e.timestamp)

    tracer = ProvenanceTracer(graph)
    result = tracer.trace(fault.event_id)
    root_ids = {e.event_id for e in result.root_causes}
    assert config.event_id in root_ids, "Fig. 4's leaf is the config change"
    assert len(result.actionable_causes) == 1

    chain = result.chains[config.event_id]
    chain_rows = [
        (i, f"{e.router}", e.kind.value, e.describe()) for i, e in enumerate(chain)
    ]

    # Every router touched by the episode appears in the blast radius,
    # matching Fig. 4's three-lane layout.
    radius = tracer.blast_radius(config.event_id)
    routers_hit = sorted({e.router for e in radius})
    assert routers_hit == ["R1", "R2", "R3"]

    obs = {e.event_id for e in net.collector}
    score = score_inference(graph, net.ground_truth, observable_ids=obs)

    lines = [
        f"HBG: {len(graph)} vertices, {graph.edge_count()} edges "
        f"(rule inference on the observable stream)",
        f"inference vs ground truth: {score}",
        "",
        "causal chain cause -> fault (cf. Fig. 4, left-to-right):",
    ]
    lines += table(("step", "router", "kind", "event"), chain_rows)
    lines += [
        "",
        f"root causes of 'R1 install P->Ext in FIB': "
        f"{[e.describe() for e in result.root_causes]}",
        f"blast radius of the config change: {len(radius)} events across "
        f"{routers_hit}",
        "",
        "DOT export of the episode subgraph (first lines):",
    ]
    dot = graph.to_dot().splitlines()
    lines += ["  " + line for line in dot[:6]] + ["  ..."]
    lines += [
        "",
        "paper shape: traversing the HBG from the fault reaches the leaf "
        "'R2 configuration change' — OK",
    ]
    emit("F4_fig4_hbg", lines)
