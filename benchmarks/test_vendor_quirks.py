"""Experiment C-VENDOR — §2's model-gap claim:

    "Other control plane verifiers model all protocols and path
    selection criteria used in this network, but ignore
    vendor-specific implementation details that may apply in other
    scenarios — e.g., differences in BGP path selection rules across
    vendors [9, 21]."

Identical configurations and identical input sequences, run under the
Cisco and Junos decision processes: the chosen exit differs, so a
single-vendor model necessarily mispredicts one of the two networks
while our capture-based approach observes each network's actual
decisions.  Also reports the §8 remedy: the deterministic (Add-Path)
profile restores agreement.
"""

import pytest

from repro.protocols.router import RouterRuntime
from repro.scenarios.vendor import (
    FIRST_PEER,
    SECOND_PEER,
    VP,
    VendorDivergenceScenario,
    _build,
)

from _report import emit, table


def _deterministic_exit(vendor: str, seed: int = 0) -> str:
    net = _build(vendor, seed, None)
    net.deterministic_bgp = True
    net.runtimes = {r.name: RouterRuntime(r, net) for r in net.topology}
    net.start()
    net.announce_prefix(FIRST_PEER, VP)
    net.run(1.0)
    net.announce_prefix(SECOND_PEER, VP)
    net.run(5.0)
    return net.runtime("B1").bgp.rib.best(VP).from_peer


def test_vendor_quirks(benchmark):
    rows = []
    for seed in (0, 1, 2):
        cisco = VendorDivergenceScenario(vendor="cisco", seed=seed)
        cisco.run()
        juniper = VendorDivergenceScenario(vendor="juniper", seed=seed)
        juniper.run()
        cisco_exit = cisco.chosen_exit()
        juniper_exit = juniper.chosen_exit()
        assert cisco_exit == FIRST_PEER, "Cisco: oldest route wins"
        assert juniper_exit == SECOND_PEER, "Junos: lowest router-id wins"
        rows.append((seed, cisco_exit, juniper_exit, cisco_exit != juniper_exit))

    det_cisco = _deterministic_exit("cisco")
    det_juniper = _deterministic_exit("juniper")
    assert det_cisco == det_juniper, "Add-Path regime restores agreement"

    benchmark(lambda: VendorDivergenceScenario(vendor="cisco", seed=0).run())

    lines = [
        "identical configs + identical announcement order, two vendors "
        f"(peer {FIRST_PEER}: announces first, router-id 99; "
        f"peer {SECOND_PEER}: announces second, router-id 1):",
        "",
    ]
    lines += table(("seed", "cisco exit", "juniper exit", "diverge"), rows)
    lines += [
        "",
        f"deterministic (Add-Path) profile: cisco -> {det_cisco}, "
        f"juniper -> {det_juniper} (agree)",
        "",
        "paper shape: a single-vendor control-plane model mispredicts "
        "the other vendor's network; observing actual decisions (our "
        "approach) sidesteps the gap; §8's Add-Path regime removes the "
        "order-dependence entirely — OK",
    ]
    emit("C-VENDOR_quirks", lines)
