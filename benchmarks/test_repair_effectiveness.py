"""Experiment C-REP — §6/§8: repair effectiveness and its
preconditions.

Runs misconfiguration campaigns on random networks and compares the
three repair strategies: blocking (baseline), offline root-cause
rollback, and the online pipeline guard.  Metrics: did the policy end
compliant, are control and data planes in sync, and how long the data
plane spent in violation.

Also probes §8's determinism precondition: with the Cisco
arrival-order tie-break ("oldest route") active, replaying the same
inputs in a different order can converge differently; the
deterministic profile (Add-Path regime) removes the divergence.
"""

import pytest

from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.net.config import ConfigChange, local_pref_map
from repro.protocols.bgp_decision import VendorProfile, best_path
from repro.protocols.routes import BgpRoute
from repro.net.addr import Prefix
from repro.scenarios.generators import build_random_network, external_prefixes
from repro.verify.policy import LoopFreedomPolicy, PreferredExitPolicy

from _report import emit, table

SEEDS = (5, 17, 29)


def _setup(seed):
    net, specs = build_random_network(6, uplinks=2, seed=seed)
    net.start()
    prefix = external_prefixes(1)[0]
    for spec in specs:
        net.announce_prefix(spec.external, prefix)
    net.run(40)
    preferred = max(specs, key=lambda s: s.local_pref)
    fallback = min(specs, key=lambda s: s.local_pref)
    policy = PreferredExitPolicy(
        prefix=prefix,
        preferred_exit=preferred.router,
        fallback_exit=fallback.router,
        uplink_of={
            preferred.router: preferred.external,
            fallback.router: fallback.external,
        },
    )
    sabotage = ConfigChange(
        preferred.router,
        "set_route_map",
        key=f"{preferred.router.lower()}-uplink-lp",
        value=local_pref_map(f"{preferred.router.lower()}-uplink-lp", 1),
        description="sabotage preferred uplink",
    )
    return net, prefix, policy, preferred, sabotage


def _violating(net, policy, prefix):
    required = policy.required_exit(net.topology)
    if required is None:
        return False
    uplink = policy.uplink_of[required]
    for router in net.topology.internal_routers():
        path, outcome = net.trace_path(router, prefix.first_address())
        if outcome != "delivered" or uplink not in path:
            return True
    return False


def _violation_time(net, policy, prefix, horizon, step=0.2):
    total = 0.0
    elapsed = 0.0
    while elapsed < horizon:
        net.run(step)
        elapsed += step
        if _violating(net, policy, prefix):
            total += step
    return total


def _episode(strategy, seed):
    net, prefix, policy, preferred, sabotage = _setup(seed)
    pipeline = None
    if strategy == "pipeline (repair)":
        pipeline = IntegratedControlPlane(
            net, [policy, LoopFreedomPolicy(prefixes=[prefix])],
            mode=PipelineMode.REPAIR,
        ).arm()
    elif strategy == "pipeline (predict)":
        pipeline = IntegratedControlPlane(
            net, [policy, LoopFreedomPolicy(prefixes=[prefix])],
            mode=PipelineMode.PREDICT,
        ).arm()
        # Train on one offense, then measure the repeat offense.
        net.apply_config_change(sabotage)
        net.run(90)
        from repro.net.config import ConfigChange, local_pref_map

        map_name = f"{preferred.router.lower()}-uplink-lp"
        sabotage = ConfigChange(
            preferred.router,
            "set_route_map",
            key=map_name,
            value=local_pref_map(map_name, 1),
            description="sabotage preferred uplink",
        )
    elif strategy == "blocking":
        from repro.repair.blocking import BlockingRepair

        blocker = BlockingRepair(net, prefixes={prefix})
        blocker.activate()
    net.apply_config_change(sabotage)
    violation_time = _violation_time(net, policy, prefix, horizon=90.0)
    if strategy == "offline rollback":
        # Detection + repair after the damage (the §6 first variant).
        pipe = IntegratedControlPlane(
            net, [policy], mode=PipelineMode.REPAIR
        )
        pipe.detect_and_repair(settle=60.0)
        violation_time += _violation_time(net, policy, prefix, horizon=5.0)
    compliant = not _violating(net, policy, prefix)
    map_name = f"{preferred.router.lower()}-uplink-lp"
    lp = net.configs.get(preferred.router).route_maps[map_name]
    reverted = lp.clauses[0].set_local_pref == preferred.local_pref
    # Plane sync: every BGP best resolves to the installed FIB hop.
    in_sync = True
    for router in net.topology.internal_routers():
        runtime = net.runtime(router)
        best = runtime.bgp.rib.best(prefix)
        fib = runtime.fib.get(prefix)
        if best is None or fib is None:
            continue
        resolved = runtime.resolve_next_hop(best.next_hop)
        if resolved is None or resolved[0] != fib.next_hop_router:
            in_sync = False
    return {
        "compliant": compliant,
        "reverted": reverted,
        "in_sync": in_sync,
        "violation_time": violation_time,
    }


def test_repair_effectiveness(benchmark):
    strategies = (
        "blocking",
        "offline rollback",
        "pipeline (repair)",
        "pipeline (predict)",
    )
    rows = []
    summary = {}
    for strategy in strategies:
        results = [_episode(strategy, seed) for seed in SEEDS]
        compliant = sum(r["compliant"] for r in results)
        reverted = sum(r["reverted"] for r in results)
        in_sync = sum(r["in_sync"] for r in results)
        mean_viol = sum(r["violation_time"] for r in results) / len(results)
        summary[strategy] = (compliant, reverted, in_sync, mean_viol)
        rows.append(
            (
                strategy,
                f"{compliant}/{len(SEEDS)}",
                f"{reverted}/{len(SEEDS)}",
                f"{in_sync}/{len(SEEDS)}",
                f"{mean_viol:.1f} s",
            )
        )
    n = len(SEEDS)
    assert summary["pipeline (repair)"][0] == n
    assert summary["pipeline (repair)"][1] == n
    assert summary["pipeline (repair)"][2] == n
    assert summary["pipeline (repair)"][3] == 0.0, "guard: zero violation time"
    assert summary["pipeline (predict)"][0] == n
    assert summary["pipeline (predict)"][1] == n
    assert summary["pipeline (predict)"][3] == 0.0
    assert summary["offline rollback"][1] == n
    assert summary["blocking"][1] == 0, "blocking never fixes the cause"
    assert summary["blocking"][2] == 0, "blocking leaves planes diverged"

    benchmark.pedantic(
        lambda: _episode("pipeline (repair)", SEEDS[0]), rounds=2, iterations=1
    )

    # --- §8 determinism ablation -------------------------------------
    prefix = Prefix.parse("203.0.113.0/24")
    older = BgpRoute(
        prefix=prefix, next_hop=1, ebgp_learned=True,
        received_at=1.0, peer_router_id=9,
    )
    newer = BgpRoute(
        prefix=prefix, next_hop=2, ebgp_learned=True,
        received_at=2.0, peer_router_id=1,
    )
    cisco = VendorProfile.cisco()
    deterministic = cisco.deterministic()
    order_a = best_path([older, newer], cisco)
    # Re-arrival in the opposite order swaps the received_at stamps.
    older_swapped = BgpRoute(
        prefix=prefix, next_hop=1, ebgp_learned=True,
        received_at=2.0, peer_router_id=9,
    )
    newer_swapped = BgpRoute(
        prefix=prefix, next_hop=2, ebgp_learned=True,
        received_at=1.0, peer_router_id=1,
    )
    order_b = best_path([older_swapped, newer_swapped], cisco)
    det_a = best_path([older, newer], deterministic)
    det_b = best_path([older_swapped, newer_swapped], deterministic)
    assert order_a.next_hop != order_b.next_hop, "arrival order decides"
    assert det_a.next_hop == det_b.next_hop, "Add-Path regime is stable"

    lines = [
        f"misconfiguration campaigns on random 6-router networks "
        f"(seeds {SEEDS}); sabotage of the preferred uplink's LP:",
        "",
    ]
    lines += table(
        (
            "strategy",
            "policy compliant",
            "cause reverted",
            "planes in sync",
            "mean time in violation",
        ),
        rows,
    )
    lines += [
        "",
        "§8 determinism precondition:",
        f"  cisco profile, arrival order A -> best nh={order_a.next_hop}; "
        f"order B -> best nh={order_b.next_hop} (diverges)",
        f"  deterministic (Add-Path) profile -> nh={det_a.next_hop} both "
        f"orders (stable)",
        "",
        "paper shape: rollback repairs the root cause and keeps planes "
        "in sync; the online guard additionally keeps violation time at "
        "zero; blocking does neither; BGP determinism needs Add-Path — OK",
    ]
    emit("C-REP_repair_effectiveness", lines)
