"""Experiment F1 — Fig. 1a/1b: convergence to the correct exit point.

Reproduces the paper's motivating sequence: with only R1's uplink
announcing P, everyone exits via R1 (Fig. 1a); when R2's uplink
announces, local-pref 30 beats 20 and everyone converges to exit via
R2 (Fig. 1b).  The benchmark measures the full scenario run
(simulation + capture) and the report prints the per-router exit
tables the figure depicts.
"""

import pytest

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P

from _report import emit, table


def _run_scenario(seed: int = 0) -> Fig1Scenario:
    scenario = Fig1Scenario(seed=seed)
    scenario.run_fig1b()
    return scenario


def test_fig1_convergence(benchmark):
    scenario = benchmark(_run_scenario)
    net = scenario.network

    # Reconstruct the 1a state for the report by rerunning stage one.
    stage_a = Fig1Scenario(seed=1)
    stage_a.run_fig1a()

    rows_a = []
    for router in ("R1", "R2", "R3"):
        path, outcome = stage_a.network.trace_path(router, P.first_address())
        rows_a.append((router, "->".join(path), outcome))
        assert outcome == "delivered"
        assert path[-1] == "Ext1", "Fig. 1a: all traffic exits via R1"

    rows_b = []
    for router in ("R1", "R2", "R3"):
        path, outcome = net.trace_path(router, P.first_address())
        rows_b.append((router, "->".join(path), outcome))
        assert outcome == "delivered"
        assert path[-1] == "Ext2", "Fig. 1b: all traffic exits via R2"

    lines = ["Fig. 1a — only the route via R1 available:"]
    lines += table(("router", "path to P", "outcome"), rows_a)
    lines += ["", "Fig. 1b — route via R2 (LP 30) available:"]
    lines += table(("router", "path to P", "outcome"), rows_b)
    lines += [
        "",
        f"events captured: {len(net.collector)}",
        f"convergence window after Ext2 announce: "
        f"{scenario.t_converged - scenario.t_r2_route:.3f}s (budgeted)",
        "paper shape: exit flips from R1's uplink to R2's uplink — OK",
    ]
    emit("F1_fig1_convergence", lines)
