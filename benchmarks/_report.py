"""Shared reporting helper for the benchmark suite.

Every benchmark regenerates one of the paper's figures (or checks one
of its quantitative claims) and emits the rows both to stdout and to
``benchmarks/reports/<experiment>.txt`` so EXPERIMENTS.md can cite a
durable artifact.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def emit(experiment: str, lines: Iterable[str]) -> str:
    """Print and persist one experiment's report; returns the path."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{experiment}.txt")
    text = "\n".join(lines)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n===== {experiment} =====")
    print(text)
    return path


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Format an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return lines
