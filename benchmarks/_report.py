"""Shared reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures (or checks one
of its quantitative claims) and emits the rows both to stdout and to
``benchmarks/reports/<experiment>.txt`` so EXPERIMENTS.md can cite a
durable artifact.

:func:`emit_json` additionally writes machine-readable
``benchmarks/reports/BENCH_<experiment>.json`` trajectories (wall
clock plus the full :mod:`repro.obs` metrics document) so future PRs
have a perf baseline to diff against.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence

from repro.obs.export import table_lines

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def emit(experiment: str, lines: Iterable[str]) -> str:
    """Print and persist one experiment's report; returns the path."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{experiment}.txt")
    text = "\n".join(lines)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n===== {experiment} =====")
    print(text)
    return path


def emit_json(experiment: str, payload: dict) -> str:
    """Persist a machine-readable benchmark trajectory; returns the path."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"BENCH_{experiment}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return path


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Format an aligned text table (delegates to repro.obs.export)."""
    return table_lines(headers, rows)
