"""Experiment C-EC — §6's claim: "even large networks (100K prefixes)
often have less than 15 equivalence classes in total".

We plant a known number of classes into synthetic network-wide FIBs
and verify the exact-partition algorithm recovers them, sweeping the
prefix count up to the paper's 100 K headline.  The compression ratio
(prefixes per class) is the figure of merit; the benchmark measures
EC computation at the 10 K point.
"""

import pytest

from repro.repair.equivalence import PrefixGrouper
from repro.scenarios.generators import planted_ec_snapshot
from repro.verify.headerspace import compression_ratio, compute_equivalence_classes

from _report import emit, table

SWEEP = (
    (1_000, 5),
    (5_000, 10),
    (10_000, 14),
    (50_000, 14),
    (100_000, 14),
)
ROUTERS = 10


def test_ec_compression(benchmark):
    rows = []
    for num_prefixes, planted in SWEEP:
        snapshot, _assignment = planted_ec_snapshot(
            num_prefixes=num_prefixes,
            num_classes=planted,
            num_routers=ROUTERS,
            seed=0,
        )
        classes = compute_equivalence_classes(snapshot)
        groups = PrefixGrouper().group(snapshot)
        assert len(classes) == planted, "exact partition recovers planting"
        assert len(groups) == planted, "prefix grouping agrees"
        rows.append(
            (
                num_prefixes,
                planted,
                len(classes),
                f"{compression_ratio(classes, num_prefixes):,.0f}x",
            )
        )

    bench_snapshot, _ = planted_ec_snapshot(
        num_prefixes=10_000, num_classes=14, num_routers=ROUTERS, seed=0
    )
    benchmark.pedantic(
        lambda: compute_equivalence_classes(bench_snapshot),
        rounds=3,
        iterations=1,
    )

    lines = [
        f"planted-class recovery across {ROUTERS} routers:",
        "",
    ]
    lines += table(
        ("prefixes", "planted classes", "recovered", "compression"), rows
    )
    lines += [
        "",
        "paper shape: 100K prefixes collapse to <15 classes "
        "(here: exactly the planted 14) — OK",
    ]
    emit("C-EC_compression", lines)
