"""Experiment C-SNAP — §5's claim: HBG-consistent snapshots let the
verifier detect violations "without missing violations or raising
false alarms".

Random networks under Poisson route churn, with per-router log
delivery lags.  Transient *real* violations (e.g. a router briefly
forwarding toward a neighbor that has not yet installed the route)
do occur during convergence and must be reported; what must *not*
happen is an alarm for a state the network was never in (Fig. 1c's
phantom loop).

Scoring: the oracle timeline is the zero-lag replay of the FIB event
log, evaluated at every FIB-change instant.  An alarm raised from a
snapshot at probe time t is FALSE iff its violation key never occurs
in the oracle timeline within [t - max_lag, t] — i.e. the alleged
state never existed in the recent past the snapshot could reflect.

The benchmark measures one full consistency sweep.
"""

import pytest

from repro.capture.io_events import IOKind
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)
from repro.snapshot.base import DataPlaneSnapshot, VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.policy import BlackholeFreedomPolicy, LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

from _report import emit, table

CHURN_RATES = (0.5, 0.2, 0.05)  # mean gap between events (s): low..high
PROBE_STEP = 0.25
WINDOW = (2.0, 14.0)
LAGS = {"R1": 0.3, "R3": 0.6}
MAX_LAG = max(LAGS.values())


def _run_case(mean_gap, seed):
    net, specs = build_random_network(6, uplinks=2, seed=seed)
    net.start()
    prefixes = external_prefixes(4)
    churn_workload(
        net, specs, prefixes, events=14, start=WINDOW[0],
        mean_gap=mean_gap, seed=seed,
    )
    net.run(40)
    return net, prefixes


def _policies(prefixes):
    return [
        LoopFreedomPolicy(prefixes=prefixes),
        BlackholeFreedomPolicy(prefixes=prefixes),
    ]


def _oracle_timeline(net, prefixes):
    """(time, violation key) pairs from the exact zero-lag replay."""
    verifier = DataPlaneVerifier(net.topology, _policies(prefixes))
    zero_lag = VerifierView(net.collector)
    fib_times = sorted(
        {
            e.timestamp
            for e in net.collector.events_of_kind(IOKind.FIB_UPDATE)
            if WINDOW[0] - MAX_LAG <= e.timestamp <= WINDOW[1] + 0.01
        }
    )
    timeline = []
    snapshotter = NaiveSnapshotter(zero_lag)
    for t in fib_times:
        result = verifier.verify(snapshotter.snapshot(t + 1e-9))
        for violation in result.violations:
            timeline.append((t, violation.key()))
    return timeline


def _is_false_alarm(timeline, key, t):
    for when, oracle_key in timeline:
        if oracle_key == key and t - MAX_LAG - 1e-6 <= when <= t + 1e-6:
            return False
    return True


def _sweep(net, prefixes, timeline):
    view = VerifierView(net.collector, lags=LAGS)
    naive = NaiveSnapshotter(view)
    snapshotter = ConsistentSnapshotter(
        view, internal_routers=net.topology.internal_routers()
    )
    verifier = DataPlaneVerifier(net.topology, _policies(prefixes))
    naive_false = naive_true = 0
    hbg_false = hbg_true = deferred = probes = 0
    t = WINDOW[0]
    while t < WINDOW[1]:
        probes += 1
        for violation in verifier.verify(naive.snapshot(t)).violations:
            if _is_false_alarm(timeline, violation.key(), t):
                naive_false += 1
            else:
                naive_true += 1
        snapshot, report = snapshotter.snapshot(t)
        if report.consistent:
            for violation in verifier.verify(snapshot).violations:
                if _is_false_alarm(timeline, violation.key(), t):
                    hbg_false += 1
                else:
                    hbg_true += 1
        else:
            deferred += 1
        t += PROBE_STEP
    return probes, naive_false, naive_true, hbg_false, hbg_true, deferred


def test_snapshot_soundness(benchmark):
    rows = []
    total_naive_false = total_hbg_false = 0
    bench_case = None
    for mean_gap in CHURN_RATES:
        for seed in (5, 17):
            net, prefixes = _run_case(mean_gap, seed)
            timeline = _oracle_timeline(net, prefixes)
            (
                probes,
                naive_false,
                naive_true,
                hbg_false,
                hbg_true,
                deferred,
            ) = _sweep(net, prefixes, timeline)
            total_naive_false += naive_false
            total_hbg_false += hbg_false
            rows.append(
                (
                    f"1/{mean_gap:.2g}s",
                    seed,
                    probes,
                    naive_false,
                    naive_true,
                    hbg_false,
                    hbg_true,
                    deferred,
                )
            )
            if bench_case is None:
                bench_case = (net, prefixes, timeline)
    assert total_hbg_false == 0, "HBG snapshots must never false-alarm"
    assert total_naive_false > 0, "naive snapshots false-alarm under churn"

    net, prefixes, timeline = bench_case
    benchmark.pedantic(
        lambda: _sweep(net, prefixes, timeline), rounds=2, iterations=1
    )

    lines = [
        f"per-router log lags {LAGS}; probes every {PROBE_STEP}s in "
        f"{WINDOW[0]}..{WINDOW[1]}s; alarms scored against the exact "
        f"oracle timeline (false = alleged state never existed):",
        "",
    ]
    lines += table(
        (
            "churn",
            "seed",
            "probes",
            "naive false",
            "naive true",
            "HBG false",
            "HBG true",
            "HBG deferred",
        ),
        rows,
    )
    lines += [
        "",
        f"totals: naive={total_naive_false} false alarms, "
        f"HBG={total_hbg_false}",
        "paper shape: the naive snapshotter alarms on states the "
        "network was never in; the HBG snapshotter defers until the "
        "cut is causally closed and never false-alarms — OK",
    ]
    emit("C-SNAP_soundness", lines)
