"""Experiment C-INF — §4.2's claim: "we expect a combination of these
(and other) techniques will be necessary to obtain suitable accuracy".

Scores each inference technique against the simulator's ground-truth
dependency channel on random networks under route churn:

* naive (prefix+timestamp filters alone — the strawman the paper
  rules out),
* rule matching,
* pattern matching (miner trained on a separate policy-compliant run),
* rules + patterns combined.

The benchmark measures rule-based graph construction on the largest
trace.
"""

import pytest

from repro.hbr.inference import (
    InferenceConfig,
    InferenceEngine,
    PatternMiner,
    score_inference,
)
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)

from _report import emit, table

SEEDS = (3, 7, 11)


def _capture(seed):
    net, specs = build_random_network(6, uplinks=2, seed=seed)
    net.start()
    churn_workload(net, specs, external_prefixes(5), events=10, start=2.0, seed=seed)
    net.run(40)
    return net


@pytest.fixture(scope="module")
def captures():
    return {seed: _capture(seed) for seed in SEEDS}


@pytest.fixture(scope="module")
def miner(captures):
    trainer = PatternMiner(window=1.0)
    training_net = _capture(seed=99)  # separate policy-compliant run
    trainer.train(training_net.collector.all_events())
    return trainer


def _avg_scores(captures, engine_factory):
    precision = recall = f1 = 0.0
    for net in captures.values():
        engine = engine_factory()
        graph = engine.build_graph(net.collector.all_events())
        obs = {e.event_id for e in net.collector}
        score = score_inference(graph, net.ground_truth, observable_ids=obs)
        precision += score.precision
        recall += score.recall
        f1 += score.f1
    n = len(captures)
    return precision / n, recall / n, f1 / n


def test_hbr_inference_accuracy(benchmark, captures, miner):
    techniques = {
        "naive (prefix+time only)": lambda: InferenceEngine(
            config=InferenceConfig(naive_prefix_timestamp=True)
        ),
        "rule matching": lambda: InferenceEngine(),
        "pattern matching": lambda: InferenceEngine(
            config=InferenceConfig(use_rules=False, use_patterns=True),
            miner=miner,
        ),
        "rules + patterns": lambda: InferenceEngine(
            config=InferenceConfig(use_rules=True, use_patterns=True),
            miner=miner,
        ),
    }
    results = {
        name: _avg_scores(captures, factory)
        for name, factory in techniques.items()
    }

    naive_p = results["naive (prefix+time only)"][0]
    rules_p, rules_r, _ = results["rule matching"]
    patterns_p, patterns_r, _ = results["pattern matching"]
    combined = results["rules + patterns"]
    assert rules_p > 10 * naive_p, "rules beat the naive strawman by far"
    assert rules_r >= 0.95
    assert patterns_r >= 0.5, "patterns find a useful share automatically"
    assert combined[2] >= results["pattern matching"][2]

    biggest = max(captures.values(), key=lambda n: len(n.collector))
    events = biggest.collector.all_events()
    benchmark(lambda: InferenceEngine().build_graph(events))

    rows = [
        (name, f"{p:.3f}", f"{r:.3f}", f"{f:.3f}")
        for name, (p, r, f) in results.items()
    ]
    lines = [
        f"HBR inference accuracy vs simulator ground truth "
        f"(mean over seeds {SEEDS}, random 6-router nets + churn):",
        "",
    ]
    lines += table(("technique", "precision", "recall", "f1"), rows)
    lines += [
        "",
        "paper shape: prefixes/timestamps alone are only filters "
        "(naive precision collapses); rules are accurate but need "
        "protocol knowledge; patterns are automatic but noisier; the "
        "combination is the strongest automatic option — OK",
    ]
    emit("C-INF_inference_accuracy", lines)
